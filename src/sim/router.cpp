#include "sim/router.hpp"

#include <bit>

#include "util/logging.hpp"

namespace wss::sim {

namespace {

/// Lowest set bit as a port index within mask word @p w.
inline int
portOf(std::size_t w, std::uint64_t bit_scan)
{
    return static_cast<int>(w) * 64 + std::countr_zero(bit_scan);
}

} // namespace

Router::Router(int id, const RouterConfig &cfg, std::uint64_t seed,
               FlitPool *pool)
    : id_(id), cfg_(cfg), rng_(seed), pool_(pool)
{
    if (cfg.ports < 1 || cfg.terminal_ports < 0 ||
        cfg.terminal_ports > cfg.ports)
        fatal("Router: bad port configuration");
    if (cfg.vcs < 1)
        fatal("Router: need at least one VC");
    if (cfg.vcs > 32767)
        fatal("Router: VC count exceeds the 16-bit id space");
    if (cfg.buffer_per_port < 1)
        fatal("Router: need at least one buffer slot per port");
    if (cfg.pipeline_delay < 1)
        fatal("Router: pipeline delay must be >= 1 cycle");
    if (cfg.rc_delay_ingress < 0 || cfg.rc_delay_transit < 0)
        fatal("Router: RC delays must be non-negative");
    if (!pool)
        fatal("Router: needs a flit pool");

    inputs_.resize(cfg.ports);
    for (auto &in : inputs_) {
        in.vcs.resize(cfg.vcs);
        in.occupied.reserve(cfg.vcs);
        in.pending.reserve(cfg.vcs);
    }
    port_enabled_.assign(static_cast<std::size_t>(cfg.ports), 1);
    outputs_.resize(cfg.ports);
    for (auto &out : outputs_)
        out.vc_owner.assign(cfg.vcs, -1);
    requests_.resize(cfg.ports);
    for (auto &reqs : requests_)
        reqs.reserve(static_cast<std::size_t>(cfg.ports));
    touched_outputs_.reserve(static_cast<std::size_t>(cfg.ports));

    const std::size_t words =
        (static_cast<std::size_t>(cfg.ports) + 63) / 64;
    in_flit_mask_.assign(words, 0);
    busy_mask_.assign(words, 0);
}

void
Router::connectInput(int port, ChannelPair *channel)
{
    inputs_.at(port).channel = channel;
    if (channel)
        growWakeWheel(channel->flits.latency());
}

void
Router::connectOutput(int port, ChannelPair *channel,
                      int downstream_buffer)
{
    auto &out = outputs_.at(port);
    out.channel = channel;
    out.credits = downstream_buffer;
    if (channel)
        growWakeWheel(channel->credits.latency());
}

void
Router::setPortEnabled(int port, bool enabled)
{
    port_enabled_.at(static_cast<std::size_t>(port)) = enabled ? 1 : 0;
}

void
Router::installRoutes(
    const std::vector<std::int32_t> *dst_router_of_terminal,
    std::vector<std::int32_t> candidate_offsets,
    std::vector<std::int16_t> candidate_ports,
    std::vector<std::int16_t> terminal_port_of)
{
    dst_router_of_terminal_ = dst_router_of_terminal;
    route_offsets_ = std::move(candidate_offsets);
    route_ports_ = std::move(candidate_ports);
    terminal_port_of_ = std::move(terminal_port_of);
}

std::int16_t
Router::route(std::int32_t dst_terminal, std::int32_t dst_router)
{
    if (dst_router == id_) {
        const std::int16_t port = terminal_port_of_[dst_terminal];
        if (port < 0)
            panic("Router ", id_, ": destination terminal ",
                  dst_terminal, " not attached here");
        return port;
    }
    const std::int32_t begin = route_offsets_[dst_router];
    const std::int32_t count = route_offsets_[dst_router + 1] - begin;
    if (count == 0)
        panic("Router ", id_, ": no route toward router ", dst_router);
    if (count == 1)
        return route_ports_[begin];
    if (!cfg_.adaptive_routing) {
        return route_ports_[begin + static_cast<std::int32_t>(
                                        rng_.nextBelow(count))];
    }
    // Adaptive: power-of-two-choices on downstream credits. Sampling
    // two random candidates and keeping the less congested one gets
    // most of the balancing benefit while avoiding the herding that
    // a fully greedy pick suffers (every ingress chasing the same
    // momentarily-emptiest spine). The two candidates are forced
    // distinct (second draw over count - 1 slots, skipping the
    // first): comparing a candidate against itself would silently
    // degrade the choice to plain random. Still exactly two
    // nextBelow() draws per routed head.
    const auto a_idx =
        static_cast<std::int32_t>(rng_.nextBelow(count));
    auto b_idx = static_cast<std::int32_t>(
        rng_.nextBelow(static_cast<std::uint64_t>(count) - 1));
    if (b_idx >= a_idx)
        ++b_idx;
    const std::int16_t a = route_ports_[begin + a_idx];
    const std::int16_t b = route_ports_[begin + b_idx];
    return outputs_[a].credits >= outputs_[b].credits ? a : b;
}

void
Router::ingest(Cycle now)
{
    // Each set bit marks exactly one arrival in exactly this cycle
    // (the wake wheel materialized it at the top of step), so every
    // pop succeeds and the masks are consumed whole.
    for (std::size_t w = 0; w < in_flit_mask_.size(); ++w) {
        std::uint64_t word = in_flit_mask_[w];
        in_flit_mask_[w] = 0;
        while (word) {
            const int port = portOf(w, word);
            const std::uint64_t bit = word & (~word + 1);
            word &= word - 1;
            auto &in = inputs_[port];
            if (const Flit *flit = in.channel->flits.peek(now)) {
                auto &vc = in.vcs[flit->vc];
                const FlitPool::Index slot = pool_->alloc(*flit);
                if (vc.q_head == FlitPool::kNil) {
                    vc.q_head = vc.q_tail = slot;
                    vc.occ_pos =
                        static_cast<std::int16_t>(in.occupied.size());
                    in.occupied.push_back(flit->vc);
                    busy_mask_[w] |= bit;
                    // Body continuations re-occupy an Active VC; any
                    // other state needs the RC/VA state machines.
                    if (vc.state != VcState::Active)
                        in.pending.push_back(flit->vc);
                } else {
                    pool_->setNext(vc.q_tail, slot);
                    vc.q_tail = slot;
                }
                ++in.occupancy;
                ++buffered_;
                if (in.occupancy > cfg_.buffer_per_port)
                    panic("Router ", id_, " port ", port,
                          ": shared buffer overflow (credit protocol "
                          "bug)");
                in.channel->flits.popFront();
            }
        }
    }
}

void
Router::runInputStages(Cycle now)
{
    // Ascending port order is load-bearing: VA claims on a shared
    // output's round-robin VC cursor depend on it.
    for (std::size_t w = 0; w < busy_mask_.size(); ++w) {
        std::uint64_t word = busy_mask_[w];
        while (word) {
            const int port = portOf(w, word);
            word &= word - 1;
            auto &in = inputs_[port];

            // RC / VA state machines over exactly the non-Active
            // occupied VCs. The old code scanned the whole occupied
            // list; sorting the pending set by occ_pos reproduces
            // that scan's visit order without touching Active VCs.
            if (!in.pending.empty()) {
                auto &pending = in.pending;
                for (std::size_t i = 1; i < pending.size(); ++i) {
                    const std::int16_t id = pending[i];
                    const std::int16_t key = in.vcs[id].occ_pos;
                    std::size_t j = i;
                    while (j > 0 &&
                           in.vcs[pending[j - 1]].occ_pos > key) {
                        pending[j] = pending[j - 1];
                        --j;
                    }
                    pending[j] = id;
                }
                std::size_t idx = 0;
                while (idx < pending.size()) {
                    const std::int16_t vc_id = pending[idx];
                    auto &vc = in.vcs[vc_id];
                    if (vc.state == VcState::Idle) {
                        const Flit &head = pool_->at(vc.q_head);
                        if (!head.head)
                            panic("Router ", id_, ": body flit at the "
                                  "head of an idle VC");
                        const int rc = port < cfg_.terminal_ports
                                           ? cfg_.rc_delay_ingress
                                           : cfg_.rc_delay_transit;
                        vc.state = VcState::Routing;
                        vc.rc_ready = now + rc;
                        vc.dst_terminal = head.dst;
                        vc.dst_router =
                            (*dst_router_of_terminal_)[head.dst];
                    }
                    if (vc.state == VcState::Routing && now >= vc.rc_ready) {
                        vc.out_port = route(vc.dst_terminal, vc.dst_router);
                        vc.state = VcState::WaitVc;
                    }
                    if (vc.state == VcState::WaitVc) {
                        auto &out = outputs_[vc.out_port];
                        // Claim a free output VC, round-robin.
                        for (int i = 0; i < cfg_.vcs; ++i) {
                            int cand = out.rr_vc + i;
                            if (cand >= cfg_.vcs)
                                cand -= cfg_.vcs;
                            if (out.vc_owner[cand] < 0) {
                                out.vc_owner[cand] =
                                    static_cast<std::int32_t>(port) *
                                        cfg_.vcs +
                                    vc_id;
                                out.rr_vc =
                                    cand + 1 == cfg_.vcs ? 0 : cand + 1;
                                vc.out_vc = static_cast<std::int16_t>(cand);
                                vc.state = VcState::Active;
                                ++in.active_vcs;
                                break;
                            }
                        }
                        if (vc.state == VcState::WaitVc)
                            instr_.vc_alloc_failures.inc();
                    }
                    if (vc.state == VcState::Active)
                        pending.erase(pending.begin() +
                                      static_cast<std::ptrdiff_t>(idx));
                    else
                        ++idx;
                }
            }

            // SA stage, input side: nominate one Active VC with a
            // flit and downstream credit, round-robin over the
            // occupied set. The cursor may point past the end after
            // the set shrank; one normalization keeps the candidate
            // sequence identical to (rr + i) mod n. No Active VC at
            // all (packets still in RC/VA) means the walk cannot
            // nominate and would not move the cursor — skip it.
            if (in.active_vcs == 0)
                continue;
            const int n = static_cast<int>(in.occupied.size());
            int rr = in.rr;
            if (rr >= n)
                rr %= n;
            for (int i = 0; i < n; ++i) {
                int slot = rr + i;
                if (slot >= n)
                    slot -= n;
                const std::int16_t vc_id = in.occupied[slot];
                auto &vc = in.vcs[vc_id];
                if (vc.state != VcState::Active ||
                    vc.q_head == FlitPool::kNil)
                    continue;
                if (outputs_[vc.out_port].credits <= 0) {
                    instr_.credit_stalls.inc();
                    continue;
                }
                auto &reqs = requests_[vc.out_port];
                if (reqs.empty())
                    touched_outputs_.push_back(vc.out_port);
                reqs.push_back({static_cast<std::int32_t>(port), vc_id});
                in.rr = slot + 1 == n ? 0 : slot + 1;
                break;
            }
        }
    }
}

void
Router::arbitrateOutputs(Cycle now)
{
    for (std::int16_t out_port : touched_outputs_) {
        auto &out = outputs_[out_port];
        auto &reqs = requests_[out_port];

        // Output side of SA: round-robin over requesting inputs.
        int winner = 0;
        int best_rank = cfg_.ports;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            int rank = reqs[i].in_port - out.rr_input;
            if (rank < 0)
                rank += cfg_.ports;
            if (rank < best_rank) {
                best_rank = rank;
                winner = static_cast<int>(i);
            }
        }
        if (reqs.size() > 1)
            instr_.sa_conflicts.inc(reqs.size() - 1);
        const Request req = reqs[winner];
        reqs.clear();
        out.rr_input =
            req.in_port + 1 == cfg_.ports ? 0 : req.in_port + 1;

        auto &in = inputs_[req.in_port];
        auto &vc = in.vcs[req.in_vc];
        const FlitPool::Index head = vc.q_head;
        Flit flit = pool_->at(head);
        vc.q_head = pool_->next(head);
        pool_->release(head);
        --in.occupancy;
        --buffered_;

        // Return the freed buffer slot upstream.
        if (in.channel)
            channelPushCredit(*in.channel, now);

        if (vc.q_head == FlitPool::kNil) {
            vc.q_tail = FlitPool::kNil;
            // Swap-remove via the stored back-index.
            const std::int16_t pos = vc.occ_pos;
            const std::int16_t moved = in.occupied.back();
            in.occupied[pos] = moved;
            in.vcs[moved].occ_pos = pos;
            in.occupied.pop_back();
            vc.occ_pos = -1;
            if (in.occupied.empty())
                busy_mask_[static_cast<std::size_t>(req.in_port) >> 6] &=
                    ~(std::uint64_t{1} << (req.in_port & 63));
        }

        flit.vc = vc.out_vc;
        ++flit.hops;

        if (flit.tail) {
            out.vc_owner[vc.out_vc] = -1;
            vc.state = VcState::Idle;
            --in.active_vcs;
            vc.out_port = -1;
            vc.out_vc = -1;
            // The next packet is already queued behind this tail: the
            // VC stays occupied and needs the RC/VA machines again.
            if (vc.q_head != FlitPool::kNil)
                in.pending.push_back(req.in_vc);
        }

        instr_.flits_routed.inc();
        --out.credits;
        if (!out.channel)
            panic("Router ", id_, ": flit routed to an unwired port");
        // ST happens here: the channel's flit lead carries the
        // VA/SA/ST pipeline depth, so the flit arrives downstream at
        // now + pipeline_delay + wire latency — the same cycle the
        // old staging ring delivered it.
        channelPushFlit(*out.channel, now, flit);
    }
    touched_outputs_.clear();
}

bool
Router::step(Cycle now)
{
    // Materialize this cycle's arrivals from the wake wheel. Every
    // entry was scheduled by a push whose delivery cycle is exactly
    // now; anything still in flight stays in a future slot. A credit
    // entry IS the credit — applying it here (before any stage runs)
    // lands it exactly where the old per-port line drain did.
    auto &arrivals = wake_wheel_[static_cast<std::size_t>(now) &
                                 wake_mask_];
    for (const std::int32_t e : arrivals) {
        if (e >= 0)
            in_flit_mask_[static_cast<std::size_t>(e) >> 6] |=
                std::uint64_t{1} << (e & 63);
        else
            ++outputs_[static_cast<std::size_t>(-e - 1)].credits;
    }
    arrivals.clear();

    ingest(now);
    runInputStages(now);
    arbitrateOutputs(now);

    // Arrival masks were consumed by ingest; only buffered flits keep
    // the router in the active set (future arrivals re-wake it
    // through the scheduler's wheel, and arbitrated flits are already
    // on their output channel).
    std::uint64_t active = 0;
    for (std::size_t w = 0; w < busy_mask_.size(); ++w)
        active |= busy_mask_[w];
    return active != 0;
}

} // namespace wss::sim
