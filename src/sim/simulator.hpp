/**
 * @file
 * The simulation driver: warmup / measurement / drain phases with
 * packet-latency and accepted-throughput statistics, in the Booksim2
 * methodology the paper uses for Figs. 21-24.
 */

#ifndef WSS_SIM_SIMULATOR_HPP
#define WSS_SIM_SIMULATOR_HPP

#include <deque>
#include <functional>

#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/stats_accumulator.hpp"

namespace wss::sim {

/// Phase lengths and bookkeeping knobs.
struct SimConfig
{
    /// Cycles before measurement starts (reach steady state).
    Cycle warmup = 2000;
    /// Measurement window length.
    Cycle measure = 8000;
    /// Extra cycles allowed to drain measured packets; if they do
    /// not all arrive, the run is flagged unstable (saturated).
    Cycle drain_limit = 30000;
    /// RNG seed.
    std::uint64_t seed = 1;
    /// Closed-loop trace mode: keep generating until the workload is
    /// exhausted (ignoring the measure window for generation) and
    /// measure every packet. The `measure` field then only bounds
    /// the run length.
    bool run_to_exhaustion = false;
    /// Optional per-cycle hook, invoked before generation each cycle
    /// (fault::FaultSchedule kills/restores links through this).
    std::function<void(Network &, Cycle)> on_cycle;
};

/// What one simulation run produced.
struct SimResult
{
    /// Mean end-to-end packet latency, creation to tail ejection
    /// (cycles), over packets created in the measurement window.
    double avg_packet_latency = 0.0;
    /// 99th percentile of the same.
    double p99_packet_latency = 0.0;
    /// Mean network latency (head injection to tail ejection).
    double avg_network_latency = 0.0;
    /// Mean router hops per packet.
    double avg_hops = 0.0;
    /// Offered load (flits per terminal per cycle, from the workload).
    double offered = 0.0;
    /// Accepted throughput: flits ejected during the measurement
    /// window per terminal per cycle.
    double accepted = 0.0;
    /// Packets created/finished in the measurement window.
    std::int64_t packets_measured = 0;
    std::int64_t packets_finished = 0;
    /// False when measured packets failed to drain (saturation).
    bool stable = false;
    /// Cycle the run ended (for run_to_exhaustion: the makespan).
    Cycle end_cycle = 0;
    /// Flits delivered over the whole run.
    std::int64_t flits_delivered = 0;
};

/**
 * Runs one workload on one network.
 */
class Simulator
{
  public:
    /**
     * @param network   the fabric (state is consumed; build fresh per
     *                  run)
     * @param workload  packet generation process
     * @param cfg       phase configuration
     */
    Simulator(Network &network, Workload &workload, const SimConfig &cfg);

    /// Run to completion and report statistics.
    SimResult run();

  private:
    void generate(Cycle now);
    void inject(Cycle now);
    void ejectAll(Cycle now);

    Network &network_;
    Workload &workload_;
    SimConfig cfg_;
    Rng rng_;

    /// Per-terminal source queues (open-loop: unbounded).
    std::vector<std::deque<Flit>> source_;
    /// Per-terminal VC for the packet currently being injected.
    std::vector<std::int16_t> current_vc_;
    std::vector<std::uint32_t> vc_counter_;

    std::uint64_t next_packet_id_ = 0;

    // Measurement bookkeeping.
    StatsAccumulator packet_latency_;
    QuantileSampler packet_latency_q_;
    StatsAccumulator network_latency_;
    StatsAccumulator hops_;
    std::int64_t measured_created_ = 0;
    std::int64_t measured_finished_ = 0;
    std::int64_t window_flits_ejected_ = 0;
    std::int64_t flits_delivered_ = 0;
};

} // namespace wss::sim

#endif // WSS_SIM_SIMULATOR_HPP
