/**
 * @file
 * The simulation driver: warmup / measurement / drain phases with
 * packet-latency and accepted-throughput statistics, in the Booksim2
 * methodology the paper uses for Figs. 21-24.
 */

#ifndef WSS_SIM_SIMULATOR_HPP
#define WSS_SIM_SIMULATOR_HPP

#include <functional>
#include <memory>

#include "obs/sim_observation.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/ring_queue.hpp"
#include "util/stats_accumulator.hpp"

namespace wss::sim {

/// Phase lengths and bookkeeping knobs.
struct SimConfig
{
    /// Cycles before measurement starts (reach steady state).
    Cycle warmup = 2000;
    /// Measurement window length.
    Cycle measure = 8000;
    /// Extra cycles allowed to drain measured packets; if they do
    /// not all arrive, the run is flagged unstable (saturated).
    Cycle drain_limit = 30000;
    /// RNG seed.
    std::uint64_t seed = 1;
    /// Closed-loop trace mode: keep generating until the workload is
    /// exhausted (ignoring the measure window for generation) and
    /// measure every packet. The `measure` field then only bounds
    /// the run length.
    bool run_to_exhaustion = false;
    /// Optional per-cycle hook, invoked before generation each cycle
    /// (fault::FaultSchedule kills/restores links through this).
    std::function<void(Network &, Cycle)> on_cycle;
    /// Collect per-router counters, per-link flit totals and buffer-
    /// occupancy histograms (SimResult::observation). Off by default:
    /// the instruments then stay detached and the hot loop pays only
    /// dead branches. Never perturbs simulated behaviour — SimResult
    /// statistics are identical with this on or off.
    bool observe = false;
    /// With observe: also record a TimelineSample every N cycles
    /// (0 = no time series).
    Cycle observe_sample_every = 0;
};

/// What one simulation run produced.
struct SimResult
{
    /// Mean end-to-end packet latency, creation to tail ejection
    /// (cycles), over packets created in the measurement window.
    double avg_packet_latency = 0.0;
    /// 99th percentile of the same.
    double p99_packet_latency = 0.0;
    /// Mean network latency (head injection to tail ejection).
    double avg_network_latency = 0.0;
    /// Mean router hops per packet.
    double avg_hops = 0.0;
    /// Offered load (flits per terminal per cycle, from the workload).
    double offered = 0.0;
    /// Accepted throughput: flits ejected during the measurement
    /// window per terminal per cycle.
    double accepted = 0.0;
    /// Packets created/finished in the measurement window.
    std::int64_t packets_measured = 0;
    std::int64_t packets_finished = 0;
    /// False when measured packets failed to drain (saturation).
    bool stable = false;
    /// Cycle the run ended (for run_to_exhaustion: the makespan).
    Cycle end_cycle = 0;
    /// Flits delivered over the whole run.
    std::int64_t flits_delivered = 0;
    /// Flits injected into the fabric over the whole run (the flit-
    /// conservation invariant checks injected == delivered +
    /// in-flight at run end).
    std::int64_t flits_injected = 0;
    /// Per-router/per-link telemetry; null unless SimConfig::observe.
    std::shared_ptr<const obs::SimObservation> observation;
};

/**
 * Runs one workload on one network.
 */
class Simulator
{
  public:
    /**
     * @param network   the fabric (state is consumed; build fresh per
     *                  run)
     * @param workload  packet generation process
     * @param cfg       phase configuration
     */
    Simulator(Network &network, Workload &workload, const SimConfig &cfg);

    /// Run to completion and report statistics.
    SimResult run();

  private:
    void generate(Cycle now);
    void emitPacket(int src, int dst, int flits);
    void inject(Cycle now);
    void ejectAll(Cycle now);

    /// Observability state, allocated only when cfg.observe.
    struct ObsState
    {
        std::shared_ptr<obs::SimObservation> data;
        /// Per-router buffer-occupancy histogram handles.
        std::vector<obs::Histogram> occupancy;
        /// Per-terminal handle on its router's flits_delivered.
        std::vector<obs::Counter> delivered;
        /// Baselines for the next phase delta.
        obs::MetricsSnapshot last_snapshot;
        std::vector<std::uint64_t> last_link_flits;
        std::size_t next_phase = 0;
        Cycle phase_start = 0;
    };

    void setupObs();
    /// Close phases whose boundary is <= @p now (call before any of
    /// cycle @p now's counter bumps).
    void beginCycleObs(Cycle now);
    /// Record per-cycle samples after cycle @p now completed.
    void endCycleObs(Cycle now);
    /// Close the remaining phases; the run executed cycles
    /// [0, @p end).
    void finalizeObs(Cycle end);
    void closePhase(Cycle end);

    Network &network_;
    Workload &workload_;
    SimConfig cfg_;
    Rng rng_;

    /// Compact source-queue entry: just what inject() needs to build
    /// the real Flit. Past saturation the backlog dwarfs every cache,
    /// so entry size directly sets the DRAM-miss rate of the two
    /// hottest loops (emitPacket's tail writes, inject's head reads).
    struct SourceFlit
    {
        std::uint64_t packet_id;
        Cycle created;
        std::int32_t dst;
        bool head;
        bool tail;
    };

    /// Per-terminal source queues (open-loop: unbounded, but ring-
    /// backed so they stop allocating at their high-water mark).
    std::vector<util::RingQueue<SourceFlit>> source_;
    /// Terminals with a non-empty source queue, one bit per id: the
    /// injection sweep's active set.
    std::vector<std::uint64_t> inject_mask_;
    /// Per-terminal VC for the packet currently being injected, and
    /// the wrapping round-robin cursor for the next one.
    std::vector<std::int16_t> current_vc_;
    std::vector<std::int16_t> next_vc_;
    /// Whether source_[t].front() is a head flit — lets a blocked
    /// injection attempt advance the VC cursor (as every attempt
    /// always has) without touching the queue at all.
    std::vector<std::uint8_t> front_head_;

    /// Persistent emit closure handed to Workload::generate each
    /// cycle (constructing it per cycle would heap-allocate).
    std::function<void(int, int, int)> emit_;
    /// Cycle being generated and whether it is in the measure window
    /// (state for the persistent closure).
    Cycle gen_now_ = 0;
    bool gen_in_window_ = false;

    std::uint64_t next_packet_id_ = 0;

    // Measurement bookkeeping.
    StatsAccumulator packet_latency_;
    QuantileSampler packet_latency_q_;
    StatsAccumulator network_latency_;
    StatsAccumulator hops_;
    std::int64_t measured_created_ = 0;
    std::int64_t measured_finished_ = 0;
    std::int64_t window_flits_ejected_ = 0;
    std::int64_t flits_delivered_ = 0;
    std::int64_t flits_generated_ = 0;
    std::int64_t flits_injected_ = 0;

    std::unique_ptr<ObsState> obs_;
};

} // namespace wss::sim

#endif // WSS_SIM_SIMULATOR_HPP
