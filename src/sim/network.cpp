#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "util/logging.hpp"

namespace wss::sim {

Network::Network(const topology::LogicalTopology &topo,
                 const NetworkSpec &spec, std::uint64_t seed)
    : spec_(spec)
{
    const std::string issue = topo.validate();
    if (!issue.empty())
        fatal("Network: invalid topology: ", issue);
    if (!spec.link_latency.empty() &&
        spec.link_latency.size() != topo.links().size())
        fatal("Network: link_latency override must cover every link");

    const int n = topo.nodeCount();
    terminal_count_ = static_cast<int>(topo.totalExternalPorts());

    // Port budget per router: terminals first, then one port per unit
    // of link multiplicity.
    std::vector<int> link_ports(n, 0);
    for (const auto &link : topo.links()) {
        link_ports[link.a] += link.multiplicity;
        link_ports[link.b] += link.multiplicity;
    }

    // Size the flit arena to the fabric's total input-buffer
    // capacity before any router exists: credit flow control bounds
    // live buffered flits to exactly this.
    std::size_t pool_slots = 0;
    for (int r = 0; r < n; ++r)
        pool_slots += static_cast<std::size_t>(
                          topo.nodes()[r].external_ports +
                          link_ports[r]) *
                      static_cast<std::size_t>(spec.buffer_per_port);
    pool_.reserve(pool_slots);

    // Wake wheels must span the longest channel in the fabric (wakes
    // are scheduled for delivery cycles, at most one flit lead +
    // latency ahead — router-fed channels carry the VA/SA/ST
    // pipeline depth as extra flit delay).
    int max_latency = spec.terminal_link_latency;
    if (spec.link_latency.empty()) {
        if (!topo.links().empty())
            max_latency =
                std::max(max_latency, spec.internal_link_latency);
    } else {
        for (const int l : spec.link_latency)
            max_latency = std::max(max_latency, l);
    }
    max_latency += spec.pipeline_delay;
    sched_.attach(n, max_latency);
    eject_wheel_.resize(std::bit_ceil(
        static_cast<std::size_t>(spec.terminal_link_latency) +
        static_cast<std::size_t>(spec.pipeline_delay) + 2));
    eject_wheel_mask_ =
        static_cast<std::uint32_t>(eject_wheel_.size() - 1);
    credit_wheel_.resize(eject_wheel_.size());
    credit_wheel_mask_ = eject_wheel_mask_;

    Rng seeder(seed);
    std::vector<int> next_port(n);
    for (int r = 0; r < n; ++r) {
        RouterConfig cfg;
        cfg.terminal_ports = topo.nodes()[r].external_ports;
        cfg.ports = cfg.terminal_ports + link_ports[r];
        cfg.vcs = spec.vcs;
        cfg.buffer_per_port = spec.buffer_per_port;
        cfg.rc_delay_ingress = spec.rc_delay_ingress;
        cfg.rc_delay_transit = spec.rc_delay_transit;
        cfg.pipeline_delay = spec.pipeline_delay;
        cfg.adaptive_routing = spec.adaptive_routing;
        routers_.push_back(
            std::make_unique<Router>(r, cfg, seeder(), &pool_));
        routers_.back()->bindScheduler(&sched_);
        next_port[r] = cfg.terminal_ports;
    }

    // Terminals: ids assigned node by node, port by port. The eject
    // mask is sized first — channel sinks keep raw pointers into it.
    terminal_router_.resize(terminal_count_);
    terminals_.resize(terminal_count_);
    eject_mask_.assign(
        (static_cast<std::size_t>(terminal_count_) + 63) / 64, 0);
    {
        int t = 0;
        for (int r = 0; r < n; ++r) {
            for (int p = 0; p < topo.nodes()[r].external_ports; ++p) {
                terminal_router_[t] = r;
                auto &ep = terminals_[t];
                // The terminal landing buffer is sized to cover the
                // credit round trip so ejection is never the
                // artificial bottleneck.
                const int landing = 2 * spec.terminal_link_latency + 8;
                ep.to_router = std::make_unique<ChannelPair>(
                    spec.terminal_link_latency, spec.buffer_per_port);
                ep.from_router = std::make_unique<ChannelPair>(
                    spec.terminal_link_latency, landing,
                    spec.pipeline_delay);
                ep.credits = spec.buffer_per_port;
                routers_[r]->connectInput(p, ep.to_router.get());
                routers_[r]->connectOutput(p, ep.from_router.get(),
                                           landing);
                ep.to_router->flit_sink = routers_[r].get();
                ep.to_router->flit_sink_port = p;
                ep.to_router->credit_wheel = &credit_wheel_;
                ep.to_router->credit_terminal = t;
                ep.to_router->credit_wheel_mask = credit_wheel_mask_;
                ep.from_router->credit_sink = routers_[r].get();
                ep.from_router->credit_sink_port = p;
                ep.from_router->eject_wheel = &eject_wheel_;
                ep.from_router->eject_terminal = t;
                ep.from_router->eject_wheel_mask = eject_wheel_mask_;
                ++t;
            }
        }
    }

    // Inter-router channels: one bidirectional pair per unit of
    // multiplicity. Track which ports lead to which neighbor (and
    // over which logical link) for the routing tables.
    adjacency_.resize(static_cast<std::size_t>(n));
    const auto &links = topo.links();
    for (std::size_t li = 0; li < links.size(); ++li) {
        const auto &link = links[li];
        const int latency = spec.link_latency.empty()
                                ? spec.internal_link_latency
                                : spec.link_latency[li];
        for (int m = 0; m < link.multiplicity; ++m) {
            auto ab = std::make_unique<ChannelPair>(
                latency, spec.buffer_per_port, spec.pipeline_delay);
            auto ba = std::make_unique<ChannelPair>(
                latency, spec.buffer_per_port, spec.pipeline_delay);
            const int pa = next_port[link.a]++;
            const int pb = next_port[link.b]++;
            routers_[link.a]->connectOutput(pa, ab.get(),
                                            spec.buffer_per_port);
            routers_[link.b]->connectInput(pb, ab.get());
            routers_[link.b]->connectOutput(pb, ba.get(),
                                            spec.buffer_per_port);
            routers_[link.a]->connectInput(pa, ba.get());
            ab->flit_sink = routers_[link.b].get();
            ab->flit_sink_port = pb;
            ab->credit_sink = routers_[link.a].get();
            ab->credit_sink_port = pa;
            ba->flit_sink = routers_[link.a].get();
            ba->flit_sink_port = pa;
            ba->credit_sink = routers_[link.b].get();
            ba->credit_sink_port = pb;
            adjacency_[link.a].push_back(
                {pa, link.b, static_cast<int>(li)});
            adjacency_[link.b].push_back(
                {pb, link.a, static_cast<int>(li)});
            link_channels_.push_back(std::move(ab));
            link_channels_.push_back(std::move(ba));
        }
        link_channel_count_.push_back(2 * link.multiplicity);
    }
    link_up_.assign(links.size(), 1);

    // Terminal -> local output port maps. Terminal ids were assigned
    // in router order, so a running counter per router recovers the
    // local port index.
    term_port_.assign(static_cast<std::size_t>(n),
                      std::vector<std::int16_t>(terminal_count_, -1));
    {
        std::vector<int> local(n, 0);
        for (int t = 0; t < terminal_count_; ++t) {
            const int r = terminal_router_[t];
            term_port_[r][t] = static_cast<std::int16_t>(local[r]++);
        }
    }

    // Every wheel slot gets its structural per-cycle bound up front
    // (each terminal channel delivers at most one flit and one credit
    // per cycle), so steady-state pushes never allocate.
    for (auto &router : routers_)
        router->finalizeWiring();
    for (auto &slot : eject_wheel_)
        slot.reserve(static_cast<std::size_t>(terminal_count_));
    for (auto &slot : credit_wheel_)
        slot.reserve(static_cast<std::size_t>(terminal_count_));

    buildRoutingTables();
}

void
Network::buildRoutingTables()
{
    const int n = routerCount();

    // BFS distances from every router over the live links.
    std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
    for (int src = 0; src < n; ++src) {
        auto &d = dist[src];
        std::queue<int> queue;
        d[src] = 0;
        queue.push(src);
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop();
            for (const auto &pl : adjacency_[u]) {
                if (!link_up_[static_cast<std::size_t>(pl.link)])
                    continue;
                if (d[pl.neighbor] < 0) {
                    d[pl.neighbor] = d[u] + 1;
                    queue.push(pl.neighbor);
                }
            }
        }
    }

    // Per (router, destination): the output ports stepping onto a
    // minimal path. Every destination must keep a non-empty ECMP set
    // — an empty one would silently blackhole packets at route time,
    // so both failure shapes are fatal here.
    for (int r = 0; r < n; ++r) {
        std::vector<std::int32_t> offsets(n + 1, 0);
        std::vector<std::int16_t> ports;
        for (int d = 0; d < n; ++d) {
            offsets[d] = static_cast<std::int32_t>(ports.size());
            if (d == r)
                continue;
            if (dist[r][d] < 0)
                fatal("Network: routers ", r, " and ", d,
                      " are disconnected (link failures partitioned "
                      "the fabric?)");
            const auto before = ports.size();
            for (const auto &pl : adjacency_[r])
                if (link_up_[static_cast<std::size_t>(pl.link)] &&
                    dist[pl.neighbor][d] == dist[r][d] - 1)
                    ports.push_back(static_cast<std::int16_t>(pl.port));
            if (ports.size() == before)
                fatal("Network: router ", r, " has no live minimal-",
                      "path port toward router ", d,
                      " (empty ECMP set)");
        }
        offsets[n] = static_cast<std::int32_t>(ports.size());
        routers_[r]->installRoutes(&terminal_router_, std::move(offsets),
                                   std::move(ports), term_port_[r]);
    }
}

void
Network::setLinkUp(int link, bool up)
{
    if (link < 0 || link >= linkCount())
        fatal("Network::setLinkUp: link ", link, " out of range");
    auto &state = link_up_[static_cast<std::size_t>(link)];
    if ((state != 0) == up)
        return;
    state = up ? 1 : 0;
    for (std::size_t r = 0; r < adjacency_.size(); ++r)
        for (const auto &pl : adjacency_[r])
            if (pl.link == link)
                routers_[r]->setPortEnabled(pl.port, up);
    buildRoutingTables();
}

bool
Network::tryInject(int t, Cycle now, const Flit &flit)
{
    auto &ep = terminals_[t];
    // Returned credits arrived through the credit wheel during
    // step(), so the count is already current.
    // The terminal link carries one flit per cycle.
    if (ep.credits <= 0 || ep.last_inject == now)
        return false;
    --ep.credits;
    ep.last_inject = now;
    channelPushFlit(*ep.to_router, now, flit);
    return true;
}

std::optional<Flit>
Network::eject(int t, Cycle now)
{
    auto &ep = terminals_[t];
    auto flit = ep.from_router->flits.pop(now);
    if (flit) {
        // Hand the landing-buffer slot straight back, and clear the
        // pending bit this delivery set (the next arrival re-sets it
        // through the wheel).
        channelPushCredit(*ep.from_router, now);
        eject_mask_[static_cast<std::size_t>(t) >> 6] &=
            ~(std::uint64_t{1} << (t & 63));
    }
    return flit;
}

void
Network::step(Cycle now)
{
    // Only routers with pending work step; a router re-arms itself
    // by returning true (still busy) and is re-woken at the delivery
    // cycle of any channel push that targets it.
    for (const std::int32_t id : sched_.beginCycle(now))
        if (routers_[static_cast<std::size_t>(id)]->step(now))
            sched_.wake(id);

    // Materialize the ejection-pending bits for cycle now + 1: every
    // terminal-bound flit arriving then was pushed during some
    // step() at or before now, so its wheel entry already exists.
    auto &arrivals = eject_wheel_[static_cast<std::size_t>(now + 1) &
                                  eject_wheel_mask_];
    for (const std::int32_t t : arrivals)
        eject_mask_[static_cast<std::size_t>(t) >> 6] |=
            std::uint64_t{1} << (t & 63);
    arrivals.clear();

    // Same for terminal injection credits arriving in cycle now + 1:
    // one wheel entry = one credit, counted straight into the
    // terminal — visible to inject(now + 1) exactly when the lazy
    // CreditLine drain would have surfaced it.
    auto &credits = credit_wheel_[static_cast<std::size_t>(now + 1) &
                                  credit_wheel_mask_];
    for (const std::int32_t t : credits)
        ++terminals_[static_cast<std::size_t>(t)].credits;
    credits.clear();
}

std::vector<std::uint64_t>
Network::linkFlitsForwarded() const
{
    std::vector<std::uint64_t> flits(link_channel_count_.size(), 0);
    std::size_t channel = 0;
    for (std::size_t link = 0; link < link_channel_count_.size();
         ++link)
        for (int c = 0; c < link_channel_count_[link]; ++c)
            flits[link] += link_channels_[channel++]->flits.totalPushed();
    return flits;
}

std::vector<double>
Network::linkUtilization(Cycle elapsed) const
{
    std::vector<double> util(link_channel_count_.size(), 0.0);
    if (elapsed <= 0)
        return util;
    const std::vector<std::uint64_t> flits = linkFlitsForwarded();
    for (std::size_t link = 0; link < util.size(); ++link)
        util[link] = static_cast<double>(flits[link]) /
                     (static_cast<double>(elapsed) *
                      link_channel_count_[link]);
    return util;
}

void
Network::instrument(obs::MetricsRegistry &registry)
{
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        const std::string prefix = "r" + std::to_string(r) + ".";
        RouterInstruments instr;
        instr.vc_alloc_failures =
            registry.counter(prefix + "vc_alloc_failures");
        instr.sa_conflicts = registry.counter(prefix + "sa_conflicts");
        instr.credit_stalls =
            registry.counter(prefix + "credit_stalls");
        instr.flits_routed = registry.counter(prefix + "flits_routed");
        routers_[r]->setInstruments(instr);
    }
}

std::int64_t
Network::flitsInFlight() const
{
    std::int64_t total = 0;
    for (const auto &router : routers_)
        total += router->bufferedFlits();
    for (const auto &ch : link_channels_)
        total += static_cast<std::int64_t>(ch->flits.inFlight());
    for (const auto &ep : terminals_) {
        total += static_cast<std::int64_t>(ep.to_router->flits.inFlight());
        total +=
            static_cast<std::int64_t>(ep.from_router->flits.inFlight());
    }
    return total;
}

} // namespace wss::sim
