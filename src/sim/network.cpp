#include "sim/network.hpp"

#include <queue>

#include "util/logging.hpp"

namespace wss::sim {

Network::Network(const topology::LogicalTopology &topo,
                 const NetworkSpec &spec, std::uint64_t seed)
    : spec_(spec)
{
    const std::string issue = topo.validate();
    if (!issue.empty())
        fatal("Network: invalid topology: ", issue);
    if (!spec.link_latency.empty() &&
        spec.link_latency.size() != topo.links().size())
        fatal("Network: link_latency override must cover every link");

    const int n = topo.nodeCount();
    terminal_count_ = static_cast<int>(topo.totalExternalPorts());

    // Port budget per router: terminals first, then one port per unit
    // of link multiplicity.
    std::vector<int> link_ports(n, 0);
    for (const auto &link : topo.links()) {
        link_ports[link.a] += link.multiplicity;
        link_ports[link.b] += link.multiplicity;
    }

    Rng seeder(seed);
    std::vector<int> next_port(n);
    for (int r = 0; r < n; ++r) {
        RouterConfig cfg;
        cfg.terminal_ports = topo.nodes()[r].external_ports;
        cfg.ports = cfg.terminal_ports + link_ports[r];
        cfg.vcs = spec.vcs;
        cfg.buffer_per_port = spec.buffer_per_port;
        cfg.rc_delay_ingress = spec.rc_delay_ingress;
        cfg.rc_delay_transit = spec.rc_delay_transit;
        cfg.pipeline_delay = spec.pipeline_delay;
        cfg.adaptive_routing = spec.adaptive_routing;
        routers_.push_back(std::make_unique<Router>(r, cfg, seeder()));
        next_port[r] = cfg.terminal_ports;
    }

    // Terminals: ids assigned node by node, port by port.
    terminal_router_.resize(terminal_count_);
    terminals_.resize(terminal_count_);
    {
        int t = 0;
        for (int r = 0; r < n; ++r) {
            for (int p = 0; p < topo.nodes()[r].external_ports; ++p) {
                terminal_router_[t] = r;
                auto &ep = terminals_[t];
                ep.to_router = std::make_unique<ChannelPair>(
                    spec.terminal_link_latency);
                ep.from_router = std::make_unique<ChannelPair>(
                    spec.terminal_link_latency);
                ep.credits = spec.buffer_per_port;
                routers_[r]->connectInput(p, ep.to_router.get());
                // The terminal landing buffer is sized to cover the
                // credit round trip so ejection is never the
                // artificial bottleneck.
                routers_[r]->connectOutput(
                    p, ep.from_router.get(),
                    2 * spec.terminal_link_latency + 8);
                ++t;
            }
        }
    }

    // Inter-router channels: one bidirectional pair per unit of
    // multiplicity. Track which ports lead to which neighbor (and
    // over which logical link) for the routing tables.
    adjacency_.resize(static_cast<std::size_t>(n));
    const auto &links = topo.links();
    for (std::size_t li = 0; li < links.size(); ++li) {
        const auto &link = links[li];
        const int latency = spec.link_latency.empty()
                                ? spec.internal_link_latency
                                : spec.link_latency[li];
        for (int m = 0; m < link.multiplicity; ++m) {
            auto ab = std::make_unique<ChannelPair>(latency);
            auto ba = std::make_unique<ChannelPair>(latency);
            const int pa = next_port[link.a]++;
            const int pb = next_port[link.b]++;
            routers_[link.a]->connectOutput(pa, ab.get(),
                                            spec.buffer_per_port);
            routers_[link.b]->connectInput(pb, ab.get());
            routers_[link.b]->connectOutput(pb, ba.get(),
                                            spec.buffer_per_port);
            routers_[link.a]->connectInput(pa, ba.get());
            adjacency_[link.a].push_back(
                {pa, link.b, static_cast<int>(li)});
            adjacency_[link.b].push_back(
                {pb, link.a, static_cast<int>(li)});
            link_channels_.push_back(std::move(ab));
            link_channels_.push_back(std::move(ba));
        }
        link_channel_count_.push_back(2 * link.multiplicity);
    }
    link_up_.assign(links.size(), 1);

    // Terminal -> local output port maps. Terminal ids were assigned
    // in router order, so a running counter per router recovers the
    // local port index.
    term_port_.assign(static_cast<std::size_t>(n),
                      std::vector<std::int16_t>(terminal_count_, -1));
    {
        std::vector<int> local(n, 0);
        for (int t = 0; t < terminal_count_; ++t) {
            const int r = terminal_router_[t];
            term_port_[r][t] = static_cast<std::int16_t>(local[r]++);
        }
    }

    buildRoutingTables();
}

void
Network::buildRoutingTables()
{
    const int n = routerCount();

    // BFS distances from every router over the live links.
    std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
    for (int src = 0; src < n; ++src) {
        auto &d = dist[src];
        std::queue<int> queue;
        d[src] = 0;
        queue.push(src);
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop();
            for (const auto &pl : adjacency_[u]) {
                if (!link_up_[static_cast<std::size_t>(pl.link)])
                    continue;
                if (d[pl.neighbor] < 0) {
                    d[pl.neighbor] = d[u] + 1;
                    queue.push(pl.neighbor);
                }
            }
        }
    }

    // Per (router, destination): the output ports stepping onto a
    // minimal path. Every destination must keep a non-empty ECMP set
    // — an empty one would silently blackhole packets at route time,
    // so both failure shapes are fatal here.
    for (int r = 0; r < n; ++r) {
        std::vector<std::int32_t> offsets(n + 1, 0);
        std::vector<std::int16_t> ports;
        for (int d = 0; d < n; ++d) {
            offsets[d] = static_cast<std::int32_t>(ports.size());
            if (d == r)
                continue;
            if (dist[r][d] < 0)
                fatal("Network: routers ", r, " and ", d,
                      " are disconnected (link failures partitioned "
                      "the fabric?)");
            const auto before = ports.size();
            for (const auto &pl : adjacency_[r])
                if (link_up_[static_cast<std::size_t>(pl.link)] &&
                    dist[pl.neighbor][d] == dist[r][d] - 1)
                    ports.push_back(static_cast<std::int16_t>(pl.port));
            if (ports.size() == before)
                fatal("Network: router ", r, " has no live minimal-",
                      "path port toward router ", d,
                      " (empty ECMP set)");
        }
        offsets[n] = static_cast<std::int32_t>(ports.size());
        routers_[r]->installRoutes(&terminal_router_, std::move(offsets),
                                   std::move(ports), term_port_[r]);
    }
}

void
Network::setLinkUp(int link, bool up)
{
    if (link < 0 || link >= linkCount())
        fatal("Network::setLinkUp: link ", link, " out of range");
    auto &state = link_up_[static_cast<std::size_t>(link)];
    if ((state != 0) == up)
        return;
    state = up ? 1 : 0;
    for (std::size_t r = 0; r < adjacency_.size(); ++r)
        for (const auto &pl : adjacency_[r])
            if (pl.link == link)
                routers_[r]->setPortEnabled(pl.port, up);
    buildRoutingTables();
}

bool
Network::tryInject(int t, Cycle now, const Flit &flit)
{
    auto &ep = terminals_[t];
    // Collect returned credits first so injection sees them.
    while (ep.to_router->credits.pop(now))
        ++ep.credits;
    // The terminal link carries one flit per cycle.
    if (ep.credits <= 0 || ep.last_inject == now)
        return false;
    --ep.credits;
    ep.last_inject = now;
    ep.to_router->flits.push(now, flit);
    return true;
}

std::optional<Flit>
Network::eject(int t, Cycle now)
{
    auto &ep = terminals_[t];
    // Keep draining credits even on cycles without an injection try.
    while (ep.to_router->credits.pop(now))
        ++ep.credits;
    auto flit = ep.from_router->flits.pop(now);
    if (flit) {
        // Hand the landing-buffer slot straight back.
        ep.from_router->credits.push(now, {flit->vc, flit->tail});
    }
    return flit;
}

void
Network::step(Cycle now)
{
    for (auto &router : routers_)
        router->step(now);
}

std::vector<std::uint64_t>
Network::linkFlitsForwarded() const
{
    std::vector<std::uint64_t> flits(link_channel_count_.size(), 0);
    std::size_t channel = 0;
    for (std::size_t link = 0; link < link_channel_count_.size();
         ++link)
        for (int c = 0; c < link_channel_count_[link]; ++c)
            flits[link] += link_channels_[channel++]->flits.totalPushed();
    return flits;
}

std::vector<double>
Network::linkUtilization(Cycle elapsed) const
{
    std::vector<double> util(link_channel_count_.size(), 0.0);
    if (elapsed <= 0)
        return util;
    const std::vector<std::uint64_t> flits = linkFlitsForwarded();
    for (std::size_t link = 0; link < util.size(); ++link)
        util[link] = static_cast<double>(flits[link]) /
                     (static_cast<double>(elapsed) *
                      link_channel_count_[link]);
    return util;
}

void
Network::instrument(obs::MetricsRegistry &registry)
{
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        const std::string prefix = "r" + std::to_string(r) + ".";
        RouterInstruments instr;
        instr.vc_alloc_failures =
            registry.counter(prefix + "vc_alloc_failures");
        instr.sa_conflicts = registry.counter(prefix + "sa_conflicts");
        instr.credit_stalls =
            registry.counter(prefix + "credit_stalls");
        instr.flits_routed = registry.counter(prefix + "flits_routed");
        routers_[r]->setInstruments(instr);
    }
}

std::int64_t
Network::flitsInFlight() const
{
    std::int64_t total = 0;
    for (const auto &router : routers_)
        total += router->bufferedFlits() + router->stagedFlits();
    for (const auto &ch : link_channels_)
        total += static_cast<std::int64_t>(ch->flits.inFlight());
    for (const auto &ep : terminals_) {
        total += static_cast<std::int64_t>(ep.to_router->flits.inFlight());
        total +=
            static_cast<std::int64_t>(ep.from_router->flits.inFlight());
    }
    return total;
}

} // namespace wss::sim
