/**
 * @file
 * Workload abstraction: who sends how much to whom, when.
 *
 * The Simulator is workload-agnostic: synthetic open-loop injection
 * (Bernoulli per terminal, Figs. 21-23) and trace replay (NERSC
 * mini-app traces, Fig. 24) both implement Workload.
 */

#ifndef WSS_SIM_WORKLOAD_HPP
#define WSS_SIM_WORKLOAD_HPP

#include <functional>
#include <memory>
#include <string>

#include "sim/flit.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/// Callback receiving generated packets: (src, dst, flit count).
using EmitPacket = std::function<void(int, int, int)>;

/**
 * A packet generation process.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /// Generate this cycle's packets through @p emit.
    virtual void generate(Cycle now, Rng &rng, const EmitPacket &emit) = 0;

    /// True when no more packets will ever be generated (traces).
    virtual bool exhausted(Cycle /*now*/) const { return false; }

    /// Called by the simulator when a packet's tail is ejected;
    /// closed-loop workloads (iteration barriers) use this feedback.
    virtual void packetDelivered(Cycle /*now*/) {}

    /// Mean offered load in flits per terminal per cycle (if known).
    virtual double offeredLoad() const = 0;

    virtual std::string name() const = 0;
};

/**
 * Open-loop Bernoulli injection: every terminal independently starts
 * a packet with probability rate/packet_size per cycle, destination
 * drawn from a TrafficPattern.
 */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param pattern      destination map (owned)
     * @param rate         offered load, flits per terminal per cycle
     * @param packet_size  flits per packet (>= 1)
     */
    SyntheticWorkload(std::unique_ptr<TrafficPattern> pattern, double rate,
                      int packet_size);

    void generate(Cycle now, Rng &rng, const EmitPacket &emit) override;
    double offeredLoad() const override { return rate_; }
    std::string name() const override;

  private:
    std::unique_ptr<TrafficPattern> pattern_;
    double rate_;
    int packet_size_;
};

} // namespace wss::sim

#endif // WSS_SIM_WORKLOAD_HPP
