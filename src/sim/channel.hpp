/**
 * @file
 * Pipelined flit and credit channels.
 *
 * A channel of latency L delivers whatever is pushed in cycle t at
 * cycle t+L, one flit per cycle (it is fully pipelined: L flits can
 * be in flight). Credits flow on a paired channel of the same
 * latency in the opposite direction, giving a credit round-trip of
 * 2L + processing — exactly the RTT that drives the buffer-sizing
 * results of Fig. 21.
 */

#ifndef WSS_SIM_CHANNEL_HPP
#define WSS_SIM_CHANNEL_HPP

#include <deque>
#include <optional>
#include <utility>

#include "sim/flit.hpp"
#include "util/logging.hpp"

namespace wss::sim {

/**
 * A fixed-latency, fully pipelined delivery line for items of type T.
 */
template <typename T>
class DelayLine
{
  public:
    explicit DelayLine(int latency) : latency_(latency)
    {
        if (latency < 1)
            fatal("DelayLine: latency must be >= 1 cycle");
    }

    int latency() const { return latency_; }

    /// Push an item in cycle @p now; at most one per cycle.
    void
    push(Cycle now, T item)
    {
        if (!queue_.empty() && queue_.back().ready == now + latency_)
            panic("DelayLine: two pushes in one cycle");
        queue_.push_back({now + latency_, std::move(item)});
        ++total_pushed_;
    }

    /// Pop the item arriving in cycle @p now, if any.
    std::optional<T>
    pop(Cycle now)
    {
        if (queue_.empty() || queue_.front().ready > now)
            return std::nullopt;
        if (queue_.front().ready < now)
            panic("DelayLine: item missed its delivery cycle");
        T item = std::move(queue_.front().item);
        queue_.pop_front();
        return item;
    }

    bool empty() const { return queue_.empty(); }
    std::size_t inFlight() const { return queue_.size(); }

    /// Items ever pushed (for utilization statistics).
    std::uint64_t totalPushed() const { return total_pushed_; }

  private:
    struct Entry
    {
        Cycle ready;
        T item;
    };

    int latency_;
    std::deque<Entry> queue_;
    std::uint64_t total_pushed_ = 0;
};

/// A credit message: frees one buffer slot of the given VC upstream.
struct Credit
{
    std::int16_t vc = 0;
    /// Set when the credited flit was a tail (output VC is free again).
    bool vc_free = false;
};

/// Flit channel + its paired reverse credit channel.
struct ChannelPair
{
    DelayLine<Flit> flits;
    DelayLine<Credit> credits;

    explicit ChannelPair(int latency) : flits(latency), credits(latency)
    {}
};

} // namespace wss::sim

#endif // WSS_SIM_CHANNEL_HPP
