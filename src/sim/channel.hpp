/**
 * @file
 * Pipelined flit and credit channels.
 *
 * A channel of latency L delivers whatever is pushed in cycle t at
 * cycle t+L, one flit per cycle (it is fully pipelined: L flits can
 * be in flight). Credits flow on a paired channel of the same
 * latency in the opposite direction, giving a credit round-trip of
 * 2L + processing — exactly the RTT that drives the buffer-sizing
 * results of Fig. 21.
 *
 * Both directions are fixed-capacity rings. A strictly-popped delay
 * line holds at most L+1 items; a line whose consumer is backed by
 * credit flow control can additionally accumulate up to the credit
 * bound, so the ring is sized for both and overflow is a loud
 * protocol bug, never silent growth. Credits carry no payload — both
 * consumers only count them — so the reverse direction is a counting
 * line that tolerates lazy draining (an idle terminal collects its
 * returned credits on the next injection attempt, not every cycle).
 *
 * ChannelPair additionally carries wake-at-delivery sink descriptors
 * for the active-set scheduler: pushing into a channel schedules a
 * wake for the consumer (a router port, or a terminal's ejection-
 * pending bit) at the cycle the item actually arrives — not at push
 * time — so consumers are never polled while an item is still in
 * flight, and an idle router or terminal is touched exactly once per
 * delivery.
 */

#ifndef WSS_SIM_CHANNEL_HPP
#define WSS_SIM_CHANNEL_HPP

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/flit.hpp"
#include "util/logging.hpp"

namespace wss::sim {

class Router;

/**
 * A fixed-latency, fully pipelined delivery line for items of type T.
 * The ring holds latency + 2 + @p slack items; strict consumers need
 * only the pipeline bound, the slack covers credit-bounded backlog.
 */
template <typename T>
class DelayLine
{
  public:
    explicit DelayLine(int latency, int slack = 0) : latency_(latency)
    {
        if (latency < 1)
            fatal("DelayLine: latency must be >= 1 cycle");
        if (slack < 0)
            fatal("DelayLine: slack must be >= 0");
        slots_.resize(static_cast<std::size_t>(latency + 2 + slack));
    }

    int latency() const { return latency_; }

    /// Push an item in cycle @p now; at most one per cycle.
    void
    push(Cycle now, T item)
    {
        if (count_ != 0) {
            std::size_t back = head_ + count_ - 1;
            if (back >= slots_.size())
                back -= slots_.size();
            if (slots_[back].ready == now + latency_)
                panic("DelayLine: two pushes in one cycle");
        }
        if (count_ == slots_.size())
            panic("DelayLine: ring overflow (consumer fell behind "
                  "its credit bound)");
        std::size_t slot = head_ + count_;
        if (slot >= slots_.size())
            slot -= slots_.size();
        slots_[slot].ready = now + latency_;
        slots_[slot].item = std::move(item);
        ++count_;
        ++total_pushed_;
    }

    /// Pop the item arriving in cycle @p now, if any.
    std::optional<T>
    pop(Cycle now)
    {
        if (count_ == 0 || slots_[head_].ready > now)
            return std::nullopt;
        if (slots_[head_].ready < now)
            panic("DelayLine: item missed its delivery cycle");
        T item = std::move(slots_[head_].item);
        if (++head_ == slots_.size())
            head_ = 0;
        --count_;
        return item;
    }

    /// In-place variant of pop() for consumers that read the item
    /// where it sits (no optional, no copy): the item arriving in
    /// cycle @p now, or nullptr. The pointer is valid until the next
    /// popFront()/push().
    T *
    peek(Cycle now)
    {
        if (count_ == 0 || slots_[head_].ready > now)
            return nullptr;
        if (slots_[head_].ready < now)
            panic("DelayLine: item missed its delivery cycle");
        return &slots_[head_].item;
    }

    /// Discard the front item (after a successful peek()).
    void
    popFront()
    {
        if (++head_ == slots_.size())
            head_ = 0;
        --count_;
    }

    bool empty() const { return count_ == 0; }
    std::size_t inFlight() const { return count_; }

    /// Items ever pushed (for utilization statistics).
    std::uint64_t totalPushed() const { return total_pushed_; }

  private:
    struct Entry
    {
        Cycle ready;
        T item;
    };

    int latency_;
    std::vector<Entry> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t total_pushed_ = 0;
};

/**
 * The reverse (credit) direction of a channel: each push frees one
 * downstream buffer slot after the line's latency. Credits carry no
 * payload, so the line only stores arrival cycles, and drain() — pop
 * everything that has arrived by @p now — tolerates consumers that
 * check in lazily instead of every cycle.
 */
class CreditLine
{
  public:
    /// @p bound: most credits ever outstanding (the buffer capacity
    /// backing this line's flow control).
    CreditLine(int latency, int bound) : latency_(latency)
    {
        if (latency < 1)
            fatal("CreditLine: latency must be >= 1 cycle");
        if (bound < 1)
            fatal("CreditLine: credit bound must be >= 1");
        ready_.resize(static_cast<std::size_t>(bound + 2));
    }

    int latency() const { return latency_; }

    /// Send one credit in cycle @p now; at most one per cycle.
    void
    push(Cycle now)
    {
        if (count_ != 0) {
            std::size_t back = head_ + count_ - 1;
            if (back >= ready_.size())
                back -= ready_.size();
            if (ready_[back] == now + latency_)
                panic("CreditLine: two pushes in one cycle");
        }
        if (count_ == ready_.size())
            panic("CreditLine: ring overflow (more credits in flight "
                  "than buffer slots)");
        std::size_t slot = head_ + count_;
        if (slot >= ready_.size())
            slot -= ready_.size();
        ready_[slot] = now + latency_;
        ++count_;
    }

    /// Collect every credit that has arrived by cycle @p now.
    int
    drain(Cycle now)
    {
        int drained = 0;
        while (count_ != 0 && ready_[head_] <= now) {
            if (++head_ == ready_.size())
                head_ = 0;
            --count_;
            ++drained;
        }
        return drained;
    }

    bool empty() const { return count_ == 0; }
    std::size_t inFlight() const { return count_; }

  private:
    int latency_;
    std::vector<Cycle> ready_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * Flit channel + its paired reverse credit channel, plus the wake
 * sinks the Network wires for active-set scheduling. Exactly one of
 * flit_sink (a router input port) and eject_wheel (the network's
 * terminal-ejection timing wheel) is set on fabric channels;
 * credit_sink is set when the credit consumer is a router output port
 * (terminal injection credits are drained lazily and need no wake).
 */
struct ChannelPair
{
    DelayLine<Flit> flits;
    CreditLine credits;

    Router *flit_sink = nullptr;
    std::int32_t flit_sink_port = -1;
    Router *credit_sink = nullptr;
    std::int32_t credit_sink_port = -1;
    /// Terminal-bound channels: delivery-cycle slot in the network's
    /// ejection wheel gets this terminal id on every push.
    std::vector<std::vector<std::int32_t>> *eject_wheel = nullptr;
    std::int32_t eject_terminal = -1;
    std::uint32_t eject_wheel_mask = 0;
    /// Terminal-injection channels: every credit push lands this
    /// terminal id in the network's credit wheel at the arrival cycle
    /// instead of entering the CreditLine — Network::step then bumps
    /// the terminal's credit count exactly when the credit arrives,
    /// so injection readiness is two array reads with no per-attempt
    /// channel drain.
    std::vector<std::vector<std::int32_t>> *credit_wheel = nullptr;
    std::int32_t credit_terminal = -1;
    std::uint32_t credit_wheel_mask = 0;

    /// @p credit_bound: buffer capacity backing this channel's flow
    /// control (bounds both backlogged flits and in-flight credits).
    /// @p flit_lead: extra flit-direction delay folding the upstream
    /// router's output pipeline (VA/SA/ST depth) into the channel —
    /// an arbitrated flit is pushed once, at allocation time, and
    /// simply delivered at t + lead + latency, with no staging ring
    /// to drain in between. Credits are unaffected: they leave at
    /// allocation time and take only the wire latency.
    ChannelPair(int latency, int credit_bound, int flit_lead = 0)
        : flits(latency + flit_lead, credit_bound),
          credits(latency, credit_bound)
    {}
};

} // namespace wss::sim

#endif // WSS_SIM_CHANNEL_HPP
