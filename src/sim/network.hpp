/**
 * @file
 * Fabric network: routers + channels + terminals, built from a
 * LogicalTopology.
 *
 * Every logical-topology node becomes a Router whose first ports face
 * terminals (the node's external ports) and whose remaining ports
 * carry the inter-chiplet links (one channel per unit of link
 * multiplicity). Channel latencies model the physical technology:
 * on-wafer hops are ~1 cycle while inter-box links in the baseline
 * switch network take several (Table V); per-link overrides let the
 * benches charge mapped multi-hop feedthrough latencies.
 *
 * Routing is shortest-path ECMP: each router holds, per destination
 * router, the set of output ports on minimal paths, and picks one
 * uniformly at random per packet. On the folded-Clos fabrics the
 * paper simulates this is classic up/down routing and is
 * deadlock-free.
 */

#ifndef WSS_SIM_NETWORK_HPP
#define WSS_SIM_NETWORK_HPP

#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/flit_pool.hpp"
#include "sim/router.hpp"
#include "topology/logical_topology.hpp"

namespace wss::sim {

/// Network-wide simulation parameters.
struct NetworkSpec
{
    /// Virtual channels per router port.
    int vcs = 16;
    /// Shared input buffer per router port (flits).
    int buffer_per_port = 32;
    /// RC delay at ingress (terminal-facing) inputs, cycles.
    int rc_delay_ingress = 1;
    /// RC delay at transit inputs, cycles.
    int rc_delay_transit = 1;
    /// VA/SA/ST pipeline depth, cycles (>= 1).
    int pipeline_delay = 1;
    /// Terminal-to-router channel latency (the paper's "I/O delay").
    int terminal_link_latency = 1;
    /// Default router-to-router channel latency.
    int internal_link_latency = 1;
    /// Optional per-logical-link latency override (indexed like
    /// LogicalTopology::links(); empty = use the default).
    std::vector<int> link_latency;
    /// ECMP next-hop selection: oblivious (false, default) or
    /// credit-adaptive (true). See RouterConfig::adaptive_routing.
    bool adaptive_routing = false;
};

/**
 * The simulated fabric. Terminals inject/eject through
 * tryInject()/eject(); step() advances every router one cycle.
 */
class Network
{
  public:
    Network(const topology::LogicalTopology &topo, const NetworkSpec &spec,
            std::uint64_t seed);

    int terminalCount() const { return terminal_count_; }
    int routerCount() const { return static_cast<int>(routers_.size()); }
    const NetworkSpec &spec() const { return spec_; }

    /// Router @p r (read-only; the fault layer inspects port state
    /// and routing behaviour through this).
    const Router &
    router(int r) const
    {
        return *routers_.at(static_cast<std::size_t>(r));
    }

    /// Number of logical links (indexed like LogicalTopology::links()).
    int
    linkCount() const
    {
        return static_cast<int>(link_channel_count_.size());
    }

    /// Administrative state of logical link @p link.
    bool
    linkUp(int link) const
    {
        return link_up_.at(static_cast<std::size_t>(link)) != 0;
    }

    /**
     * Kill (@p up false) or restore (@p up true) logical link
     * @p link and rebuild every routing table excluding dead links.
     * Flits already in flight on the link keep draining (the
     * maintenance model: a failed link carries no *new* packets);
     * new route computations only see surviving paths. Calls
     * fatal() if the surviving fabric is partitioned.
     */
    void setLinkUp(int link, bool up);

    /// Router hosting terminal @p t (for locality-aware workloads).
    int routerOfTerminal(int t) const { return terminal_router_[t]; }

    /**
     * Try to inject @p flit at terminal @p t (at most one flit per
     * terminal per cycle). Fails (returns false) when the terminal
     * has no credit for the router's input buffer.
     */
    bool tryInject(int t, Cycle now, const Flit &flit);

    /**
     * Would tryInject accept a flit at terminal @p t this cycle?
     * Two array reads (returned credits arrive through the credit
     * wheel during step(), not via a per-attempt channel drain), so a
     * false return lets the caller skip preparing the flit entirely
     * (the hot case at saturation, where most terminals are blocked
     * on credits every cycle).
     */
    bool
    injectReady(int t, Cycle now) const
    {
        const TerminalEndpoint &ep =
            terminals_[static_cast<std::size_t>(t)];
        return ep.credits > 0 && ep.last_inject != now;
    }

    /// Collect the flit arriving at terminal @p t this cycle, if any.
    std::optional<Flit> eject(int t, Cycle now);

    /**
     * Terminals with a flit arriving this cycle, one bit per
     * terminal id, valid between step(now - 1) and step(now).
     * Ejection sweeps iterate set bits (ascending) instead of every
     * terminal; a successful eject() clears its bit (each delivery
     * sets the bit for exactly its arrival cycle, scheduled through
     * the ejection timing wheel at push time).
     */
    const std::vector<std::uint64_t> &
    ejectPending() const
    {
        return eject_mask_;
    }

    /// Advance the active routers one cycle (the scheduler tracks
    /// which routers have pending work). Call after terminal
    /// handling.
    void step(Cycle now);

    /// Flits anywhere in the fabric (buffers, stages, channels) --
    /// zero means fully drained.
    std::int64_t flitsInFlight() const;

    /// Number of virtual channels a terminal can spread packets over.
    int vcs() const { return spec_.vcs; }

    /// Measured utilization of every logical link over @p elapsed
    /// cycles: flits actually forwarded / channel-cycles offered,
    /// indexed like LogicalTopology::links(). Both directions and
    /// all parallel channels of a bundle are aggregated — the
    /// measured counterpart of the mapping layer's provisioned
    /// channel loads (Fig. 8).
    std::vector<double> linkUtilization(Cycle elapsed) const;

    /// Cumulative flits forwarded over every logical link (both
    /// directions and all parallel channels summed), indexed like
    /// LogicalTopology::links().
    std::vector<std::uint64_t> linkFlitsForwarded() const;

    /// Physical channels per logical link (2 x multiplicity).
    const std::vector<int> &
    linkChannelCount() const
    {
        return link_channel_count_;
    }

    /**
     * Attach per-router instruments (`r<i>.vc_alloc_failures`,
     * `r<i>.sa_conflicts`, `r<i>.credit_stalls`, `r<i>.flits_routed`)
     * backed by @p registry, which must outlive this network.
     */
    void instrument(obs::MetricsRegistry &registry);

  private:
    struct TerminalEndpoint
    {
        std::unique_ptr<ChannelPair> to_router;
        std::unique_ptr<ChannelPair> from_router;
        int credits = 0;
        Cycle last_inject = -1;
    };

    /// One unit of a link bundle as seen from one endpoint router.
    struct PortLink
    {
        int port = 0;
        int neighbor = 0;
        /// Logical link index (for the administrative up/down state).
        int link = 0;
    };

    /**
     * Recompute every router's shortest-path ECMP table over the
     * live links (link_up_) and install them. Fails loudly — both
     * when a destination router is unreachable and when a reachable
     * destination would end up with an empty ECMP candidate set —
     * rather than letting packets silently drop.
     */
    void buildRoutingTables();

    NetworkSpec spec_;
    int terminal_count_ = 0;
    /// Arena backing every router's VC queues, sized to the fabric's
    /// total input-buffer capacity.
    FlitPool pool_;
    /// Active-set scheduler: only routers with pending work step.
    RouterScheduler sched_;
    /// Terminals with a flit arriving this cycle (see ejectPending).
    std::vector<std::uint64_t> eject_mask_;
    /// Delivery-cycle wheel feeding eject_mask_: slot c & mask lists
    /// the terminals whose flit arrives in cycle c. Terminal-bound
    /// channel pushes append here; step(now) drains slot now + 1.
    std::vector<std::vector<std::int32_t>> eject_wheel_;
    std::uint32_t eject_wheel_mask_ = 0;
    /// Delivery-cycle wheel for terminal injection credits: slot
    /// c & mask lists one entry per credit arriving in cycle c.
    /// step(now) drains slot now + 1 into the terminals' credit
    /// counts, exactly when the old lazy CreditLine drain would have
    /// surfaced them to an injection attempt.
    std::vector<std::vector<std::int32_t>> credit_wheel_;
    std::uint32_t credit_wheel_mask_ = 0;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<ChannelPair>> link_channels_;
    /// Channels per logical link (2 x multiplicity), for utilization
    /// aggregation.
    std::vector<int> link_channel_count_;
    std::vector<TerminalEndpoint> terminals_;
    std::vector<std::int32_t> terminal_router_;
    /// Per-router adjacency (one entry per unit of multiplicity),
    /// retained for routing-table rebuilds after link failures.
    std::vector<std::vector<PortLink>> adjacency_;
    /// Administrative per-link state; 1 = up.
    std::vector<char> link_up_;
    /// Per-router terminal -> local output port (-1 elsewhere).
    std::vector<std::vector<std::int16_t>> term_port_;
};

} // namespace wss::sim

#endif // WSS_SIM_NETWORK_HPP
