#include "sim/traffic.hpp"

#include <bit>
#include <cmath>

#include "util/logging.hpp"

namespace wss::sim {

namespace {

/// Bits needed to index @p terminals endpoints (power-of-two width).
int
indexBits(int terminals)
{
    int bits = 0;
    while ((1 << bits) < terminals)
        ++bits;
    return bits;
}

class Uniform : public TrafficPattern
{
  public:
    using TrafficPattern::TrafficPattern;

    int
    destination(int src, Rng &rng) const override
    {
        // Uniform over the other terminals.
        const auto d =
            static_cast<int>(rng.nextBelow(terminals_ - 1));
        return d >= src ? d + 1 : d;
    }

    std::string name() const override { return "uniform"; }
};

class Transpose : public TrafficPattern
{
  public:
    explicit Transpose(int terminals)
        : TrafficPattern(terminals),
          side_(static_cast<int>(std::round(std::sqrt(terminals))))
    {
        if (side_ * side_ != terminals)
            fatal("transpose traffic needs a square terminal count, "
                  "got ", terminals);
    }

    int
    destination(int src, Rng &) const override
    {
        const int r = src / side_, c = src % side_;
        return c * side_ + r;
    }

    std::string name() const override { return "transpose"; }

  private:
    int side_;
};

class BitComplement : public TrafficPattern
{
  public:
    explicit BitComplement(int terminals)
        : TrafficPattern(terminals), bits_(indexBits(terminals))
    {
        if ((1 << bits_) != terminals)
            fatal("bit-complement traffic needs a power-of-two "
                  "terminal count, got ", terminals);
    }

    int
    destination(int src, Rng &) const override
    {
        return ~src & ((1 << bits_) - 1);
    }

    std::string name() const override { return "bitcomp"; }

  private:
    int bits_;
};

class BitReverse : public TrafficPattern
{
  public:
    explicit BitReverse(int terminals)
        : TrafficPattern(terminals), bits_(indexBits(terminals))
    {
        if ((1 << bits_) != terminals)
            fatal("bit-reverse traffic needs a power-of-two terminal "
                  "count, got ", terminals);
    }

    int
    destination(int src, Rng &) const override
    {
        int out = 0;
        for (int b = 0; b < bits_; ++b)
            if (src & (1 << b))
                out |= 1 << (bits_ - 1 - b);
        return out;
    }

    std::string name() const override { return "bitrev"; }

  private:
    int bits_;
};

class Shuffle : public TrafficPattern
{
  public:
    explicit Shuffle(int terminals)
        : TrafficPattern(terminals), bits_(indexBits(terminals))
    {
        if ((1 << bits_) != terminals)
            fatal("shuffle traffic needs a power-of-two terminal "
                  "count, got ", terminals);
    }

    int
    destination(int src, Rng &) const override
    {
        const int top = (src >> (bits_ - 1)) & 1;
        return ((src << 1) | top) & ((1 << bits_) - 1);
    }

    std::string name() const override { return "shuffle"; }

  private:
    int bits_;
};

class Tornado : public TrafficPattern
{
  public:
    using TrafficPattern::TrafficPattern;

    int
    destination(int src, Rng &) const override
    {
        return (src + terminals_ / 2 - 1 + terminals_) % terminals_;
    }

    std::string name() const override { return "tornado"; }
};

class Asymmetric : public TrafficPattern
{
  public:
    Asymmetric(int terminals, int hot, double fraction)
        : TrafficPattern(terminals), hot_(hot), fraction_(fraction)
    {
        if (hot < 1 || hot > terminals)
            fatal("asymmetric traffic: hot terminal count out of range");
        if (fraction < 0.0 || fraction > 1.0)
            fatal("asymmetric traffic: hot fraction out of range");
    }

    int
    destination(int src, Rng &rng) const override
    {
        if (rng.nextBool(fraction_)) {
            const auto d = static_cast<int>(rng.nextBelow(hot_));
            return d == src ? (d + 1) % terminals_ : d;
        }
        const auto d =
            static_cast<int>(rng.nextBelow(terminals_ - 1));
        return d >= src ? d + 1 : d;
    }

    std::string name() const override { return "asymmetric"; }

  private:
    int hot_;
    double fraction_;
};

} // namespace

std::unique_ptr<TrafficPattern>
uniformTraffic(int terminals)
{
    return std::make_unique<Uniform>(terminals);
}

std::unique_ptr<TrafficPattern>
transposeTraffic(int terminals)
{
    return std::make_unique<Transpose>(terminals);
}

std::unique_ptr<TrafficPattern>
bitComplementTraffic(int terminals)
{
    return std::make_unique<BitComplement>(terminals);
}

std::unique_ptr<TrafficPattern>
bitReverseTraffic(int terminals)
{
    return std::make_unique<BitReverse>(terminals);
}

std::unique_ptr<TrafficPattern>
shuffleTraffic(int terminals)
{
    return std::make_unique<Shuffle>(terminals);
}

std::unique_ptr<TrafficPattern>
tornadoTraffic(int terminals)
{
    return std::make_unique<Tornado>(terminals);
}

std::unique_ptr<TrafficPattern>
asymmetricTraffic(int terminals, int hot_terminals, double hot_fraction)
{
    return std::make_unique<Asymmetric>(terminals, hot_terminals,
                                        hot_fraction);
}

std::unique_ptr<TrafficPattern>
makeTraffic(const std::string &name, int terminals)
{
    if (name == "uniform")
        return uniformTraffic(terminals);
    if (name == "transpose")
        return transposeTraffic(terminals);
    if (name == "bitcomp")
        return bitComplementTraffic(terminals);
    if (name == "bitrev")
        return bitReverseTraffic(terminals);
    if (name == "shuffle")
        return shuffleTraffic(terminals);
    if (name == "tornado")
        return tornadoTraffic(terminals);
    if (name == "asymmetric")
        return asymmetricTraffic(terminals, std::max(1, terminals / 16),
                                 0.5);
    fatal("unknown traffic pattern '", name, "'");
}

} // namespace wss::sim
