/**
 * @file
 * Minimal JSON document parser (stdlib only).
 *
 * The repo writes several JSON artifacts (switch profiles, campaign
 * summaries, Chrome traces, run manifests) and until now only needed
 * to *parse* the one fixed schema of flow::SwitchProfile, which uses
 * a private streaming reader. obs::RunManifest::loadJsonFile and the
 * `wss report` subcommand need to walk arbitrary documents written by
 * earlier runs, so this header provides a tiny DOM: parse a whole
 * document into a JsonValue tree and navigate it with find()/as*().
 *
 * Deliberately small: no serialization (writers keep emitting JSON by
 * hand at max_digits10, as everywhere else in the repo), no comments,
 * no trailing commas — exactly RFC 8259 minus \u surrogate pairs
 * (escaped \uXXXX below 0x80 decodes; anything higher is preserved
 * verbatim as its escape text, which is lossless for reporting).
 * Malformed input is a user error: fatal(), never UB.
 */

#ifndef WSS_UTIL_JSON_HPP
#define WSS_UTIL_JSON_HPP

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wss::util {

/**
 * One node of a parsed JSON document.
 *
 * Object members keep their file order (writers in this repo emit
 * sorted keys where determinism matters, so order-preservation makes
 * round-trip comparisons meaningful).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Object, Array };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /// Member lookup; nullptr when absent or not an object.
    const JsonValue *find(std::string_view key) const;

    /// find() that fatal()s when the member is missing. @p what names
    /// the document in the error message.
    const JsonValue &require(std::string_view key,
                             std::string_view what) const;

    /// Typed accessors; fatal() on kind mismatch (@p what for context).
    bool asBool(std::string_view what) const;
    double asNumber(std::string_view what) const;
    const std::string &asString(std::string_view what) const;
    const std::vector<JsonValue> &asArray(std::string_view what) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    asObject(std::string_view what) const;

    /// Convenience: member @p key as number/string, or @p fallback
    /// when the member is absent (kind mismatch still fatal()s).
    double numberOr(std::string_view key, double fallback) const;
    std::string stringOr(std::string_view key,
                         std::string_view fallback) const;

    /**
     * Parse one complete document from @p text; trailing non-space
     * characters and malformed input fatal() with @p what and the
     * byte offset of the problem.
     */
    static JsonValue parse(std::string_view text, std::string_view what);

    /// parse() on the contents of @p path; fatal() when unreadable.
    static JsonValue parseFile(const std::string &path,
                               std::string_view what);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<std::pair<std::string, JsonValue>> object_;
    std::vector<JsonValue> array_;
};

} // namespace wss::util

#endif // WSS_UTIL_JSON_HPP
