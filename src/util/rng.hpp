/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (mapping initialisations, traffic
 * injection, trace synthesis) take an explicit Rng so experiments are
 * reproducible from a seed. The implementation is xoshiro256**, which
 * is fast, high-quality, and identical across platforms (unlike
 * std::mt19937 + distribution objects whose output is not pinned by
 * the standard).
 */

#ifndef WSS_UTIL_RNG_HPP
#define WSS_UTIL_RNG_HPP

#include <cassert>
#include <cstdint>

namespace wss {

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Satisfies UniformRandomBitGenerator so it can also be handed to
 * std::shuffle and friends.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /// Construct from a 64-bit seed (expanded via splitmix64).
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step: guarantees a non-degenerate state even
            // for seed == 0.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /// Next raw 64-bit draw.
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). @p bound must be positive.
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        assert(bound > 0);
        // Lemire's nearly-divisionless bounded draw with rejection to
        // remove modulo bias.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(nextBelow(span));
    }

    /// Uniform double in [0, 1).
    double
    nextDouble()
    {
        // 53 random mantissa bits.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli draw with probability @p p of returning true.
    bool nextBool(double p) { return nextDouble() < p; }

    /// Derive an independent generator (for parallel substreams).
    Rng
    split()
    {
        return Rng((*this)());
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace wss

#endif // WSS_UTIL_RNG_HPP
