/**
 * @file
 * Streaming statistics accumulators used by the fabric simulator.
 */

#ifndef WSS_UTIL_STATS_ACCUMULATOR_HPP
#define WSS_UTIL_STATS_ACCUMULATOR_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wss {

/**
 * Mean / min / max / variance of a stream of samples (Welford update,
 * so it is numerically stable even for millions of latency samples).
 */
class StatsAccumulator
{
  public:
    /// Add one sample.
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /// Merge another accumulator into this one (Chan's formula).
    void
    merge(const StatsAccumulator &other)
    {
        if (other.n_ == 0)
            return;
        if (n_ == 0) {
            *this = other;
            return;
        }
        const double delta = other.mean_ - mean_;
        const auto n = static_cast<double>(n_);
        const auto m = static_cast<double>(other.n_);
        mean_ += delta * m / (n + m);
        m2_ += other.m2_ + delta * delta * n * m / (n + m);
        n_ += other.n_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    std::uint64_t count() const { return n_; }
    bool empty() const { return n_ == 0; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /// Population variance.
    double
    variance() const
    {
        return n_ ? m2_ / static_cast<double>(n_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample container with exact quantiles; used for tail latency where
 * a streaming mean is not enough. Stores all samples.
 */
class QuantileSampler
{
  public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /// Pre-size the sample store. A caller that knows an upper bound
    /// on its sample count (the simulator: terminals x window cycles)
    /// reserves up front so add() never reallocates mid-measurement —
    /// part of the cycle loop's zero-steady-state-allocation
    /// invariant.
    void reserve(std::size_t n) { samples_.reserve(n); }

    /// Merge another sampler's samples into this one. Quantiles of
    /// the merged sampler are exact (identical to a single stream
    /// that saw all samples), so per-worker samplers can be combined
    /// at a barrier.
    void
    merge(const QuantileSampler &other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }

    /**
     * Exact quantile by nearest-rank, q in [0, 1].
     * Selects on a reused scratch buffer (O(n) nth_element, no full
     * sort), leaving the sample stream itself untouched — callers
     * can keep adding or merging afterwards, and no copy of the
     * sampler is ever needed just to read a quantile.
     * @return NaN for an empty sampler — "no samples" must not be
     *         confusable with a measured 0; callers that want a
     *         sentinel check empty() first.
     */
    double
    quantile(double q) const
    {
        if (samples_.empty())
            return std::numeric_limits<double>::quiet_NaN();
        scratch_ = samples_;
        const double pos = q * static_cast<double>(samples_.size() - 1);
        const auto idx = std::min(static_cast<std::size_t>(pos + 0.5),
                                  samples_.size() - 1);
        std::nth_element(scratch_.begin(),
                         scratch_.begin() +
                             static_cast<std::ptrdiff_t>(idx),
                         scratch_.end());
        return scratch_[idx];
    }

  private:
    std::vector<double> samples_;
    /// Selection workspace; mutable so quantile() stays const.
    mutable std::vector<double> scratch_;
};

} // namespace wss

#endif // WSS_UTIL_STATS_ACCUMULATOR_HPP
