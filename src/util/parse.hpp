/**
 * @file
 * Strict CLI value parsing.
 *
 * The same contract as WSS_JOBS (exec::ThreadPool): the whole string
 * must be a plain positive decimal integer — "8x", "", " 4", "+4",
 * "0" and "-2" are all rejected. The difference is the failure mode:
 * an environment knob falls back with a warning (a typo should not
 * kill a long campaign), but an explicit command-line argument is a
 * stated intent, so a malformed one is a fatal error — silently
 * running with a different seed or rank count than the user asked
 * for would poison every artifact downstream.
 */

#ifndef WSS_UTIL_PARSE_HPP
#define WSS_UTIL_PARSE_HPP

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/logging.hpp"

namespace wss::util {

/**
 * Parse @p value as a strictly positive decimal integer in
 * [1, @p max]. fatal() — naming @p what and echoing the offending
 * text — on anything else: empty, non-numeric, trailing junk, signs,
 * whitespace, zero, negative, or out of range.
 */
inline std::int64_t
parsePositiveInt(const std::string &value, const char *what,
                 std::int64_t max = INT64_MAX)
{
    const char *text = value.c_str();
    char *end = nullptr;
    errno = 0;
    const long long n = std::strtoll(text, &end, 10);
    // strtoll alone would accept " 4", "+4" and "8x"; require the
    // value to be exactly a string of decimal digits.
    if (text[0] < '0' || text[0] > '9' || errno != 0 || end == text ||
        *end != '\0' || n <= 0 || n > max)
        fatal(what, "='", value, "' is not a positive integer (1..",
              max, ")");
    return static_cast<std::int64_t>(n);
}

} // namespace wss::util

#endif // WSS_UTIL_PARSE_HPP
