#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace wss::util {

namespace {

std::string
kindName(JsonValue::Kind kind)
{
    switch (kind) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return "bool";
    case JsonValue::Kind::Number: return "number";
    case JsonValue::Kind::String: return "string";
    case JsonValue::Kind::Object: return "object";
    case JsonValue::Kind::Array: return "array";
    }
    return "?";
}

} // namespace

/// Recursive-descent parser over the whole document (same shape as
/// the streaming reader in flow/switch_profile.cpp, but building a
/// JsonValue tree instead of dispatching on known keys).
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string_view what)
        : text_(text), what_(what)
    {
    }

    JsonValue
    document()
    {
        JsonValue v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal(what_, ": malformed JSON at byte ", pos_, ": ", msg);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("bad literal");
        pos_ += word.size();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const std::string hex(text_.substr(pos_, 4));
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4)
                    fail("bad \\u escape");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else {
                    // Preserve the escape text verbatim — lossless
                    // for reporting, and avoids UTF-8 encoding here.
                    out += "\\u";
                    out += hex;
                }
                pos_ += 4;
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    double
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("bad number fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("bad number exponent");
        }
        const std::string token(text_.substr(start, pos_ - start));
        return std::strtod(token.c_str(), nullptr);
    }

    JsonValue
    value()
    {
        JsonValue v;
        switch (peek()) {
        case '{': {
            ++pos_;
            v.kind_ = JsonValue::Kind::Object;
            skipSpace();
            if (consume('}'))
                return v;
            while (true) {
                skipSpace();
                std::string key = parseString();
                expect(':');
                v.object_.emplace_back(std::move(key), value());
                if (consume(','))
                    continue;
                expect('}');
                return v;
            }
        }
        case '[': {
            ++pos_;
            v.kind_ = JsonValue::Kind::Array;
            skipSpace();
            if (consume(']'))
                return v;
            while (true) {
                v.array_.push_back(value());
                if (consume(','))
                    continue;
                expect(']');
                return v;
            }
        }
        case '"':
            v.kind_ = JsonValue::Kind::String;
            v.string_ = parseString();
            return v;
        case 't':
            literal("true");
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
            return v;
        case 'f':
            literal("false");
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = false;
            return v;
        case 'n':
            literal("null");
            v.kind_ = JsonValue::Kind::Null;
            return v;
        default:
            v.kind_ = JsonValue::Kind::Number;
            v.number_ = parseNumber();
            return v;
        }
    }

    std::string_view text_;
    std::string_view what_;
    std::size_t pos_ = 0;
};

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::require(std::string_view key, std::string_view what) const
{
    const JsonValue *v = find(key);
    if (!v)
        fatal(what, ": missing required member \"", key, "\"");
    return *v;
}

bool
JsonValue::asBool(std::string_view what) const
{
    if (kind_ != Kind::Bool)
        fatal(what, ": expected bool, got ", kindName(kind_));
    return bool_;
}

double
JsonValue::asNumber(std::string_view what) const
{
    if (kind_ != Kind::Number)
        fatal(what, ": expected number, got ", kindName(kind_));
    return number_;
}

const std::string &
JsonValue::asString(std::string_view what) const
{
    if (kind_ != Kind::String)
        fatal(what, ": expected string, got ", kindName(kind_));
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray(std::string_view what) const
{
    if (kind_ != Kind::Array)
        fatal(what, ": expected array, got ", kindName(kind_));
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject(std::string_view what) const
{
    if (kind_ != Kind::Object)
        fatal(what, ": expected object, got ", kindName(kind_));
    return object_;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asNumber(key) : fallback;
}

std::string
JsonValue::stringOr(std::string_view key, std::string_view fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asString(key) : std::string(fallback);
}

JsonValue
JsonValue::parse(std::string_view text, std::string_view what)
{
    return JsonParser(text, what).document();
}

JsonValue
JsonValue::parseFile(const std::string &path, std::string_view what)
{
    std::ifstream is(path);
    if (!is)
        fatal(what, ": cannot read '", path, "'");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return parse(buffer.str(), what);
}

} // namespace wss::util
