/**
 * @file
 * Minimal status/error reporting, in the spirit of gem5's logging.hh.
 *
 * fatal()  — the run cannot continue because of a user/configuration
 *            error (bad parameters, infeasible request); exits with 1.
 * panic()  — an internal invariant was violated (a wss bug); aborts.
 * warn()   — something is suspicious but the run continues.
 *
 * All emitters format the whole line first and write it to stderr as
 * a single operation under a shared mutex, so concurrent workers
 * (exec::Campaign) never interleave fragments of two messages. The
 * mutex is released before exit()/abort() so a fatal() on one thread
 * cannot deadlock another thread's warn().
 *
 * Observability hook: fatal(), panic(), warnOnce() and
 * util::writeArtifactFile() report themselves through a single
 * process-wide function pointer (setLogEventHook) before doing their
 * usual work. The obs layer installs a hook that records a
 * flight-recorder event and, on panic()/fatal(), drains everything
 * into a crash.json post-mortem (obs::FlightRecorder::enable does
 * the installation — util/ stays free of obs/ dependencies). When no
 * hook is installed the notification is one relaxed atomic load.
 *
 * Async-signal-safety rules (who may run where):
 *
 *   - Everything in this header runs in NORMAL context only. The
 *     emitters take logMutex() and use iostreams/ostringstream, all
 *     of which allocate — calling any of them from a signal handler
 *     is undefined behaviour (a handler interrupting emitLine()
 *     would self-deadlock on logMutex()).
 *   - The hook is likewise invoked in normal context only: panic()
 *     and fatal() call it from the failing thread *before*
 *     abort()/exit(), never from a handler. A hook implementation
 *     may therefore allocate and lock, but it must not call back
 *     into fatal()/panic() (infinite recursion) and must tolerate
 *     concurrent invocation from multiple threads.
 *   - Signal handlers (SIGSEGV/SIGABRT/SIGBUS, installed by
 *     obs::CrashDump) bypass this header entirely: they are written
 *     against write(2)/open(2) with manual formatting into
 *     preallocated buffers, take no locks, and read only lock-free
 *     atomics and single-writer ring slots.
 */

#ifndef WSS_UTIL_LOGGING_HPP
#define WSS_UTIL_LOGGING_HPP

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace wss {
namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

/// One process-wide mutex serializing every log line.
inline std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/// What a log-event hook is being told about (see file comment).
enum class LogEvent : int {
    WarnOnce = 0, ///< A WSS_WARN_ONCE call site fired (msg = text).
    Panic,        ///< panic() is about to emit and abort().
    Fatal,        ///< fatal() is about to emit and exit(1).
    Artifact,     ///< An artifact file was written (msg = path).
};

using LogEventHook = void (*)(LogEvent, const char *msg);

inline std::atomic<LogEventHook> &
logEventHookSlot()
{
    static std::atomic<LogEventHook> hook{nullptr};
    return hook;
}

/// Tell the installed hook (if any) that @p event happened. Normal
/// context only; one relaxed load when no hook is installed.
inline void
notifyLogEvent(LogEvent event, const char *msg)
{
    if (LogEventHook hook =
            logEventHookSlot().load(std::memory_order_acquire))
        hook(event, msg);
}

/// Write one already-formatted line to stderr atomically.
inline void
emitLine(std::string_view prefix, const std::string &msg)
{
    std::ostringstream line;
    line << prefix << msg << '\n';
    const std::string text = line.str();
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << text << std::flush;
}

} // namespace detail

/// Install (or clear, with nullptr) the process-wide log-event hook.
inline void
setLogEventHook(detail::LogEventHook hook)
{
    detail::logEventHookSlot().store(hook, std::memory_order_release);
}

/// Report a configuration/user error and exit(1).
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    const std::string msg = detail::concat(args...);
    detail::emitLine("fatal: ", msg);
    detail::notifyLogEvent(detail::LogEvent::Fatal, msg.c_str());
    std::exit(1);
}

/// Report an internal invariant violation and abort().
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    const std::string msg = detail::concat(args...);
    detail::emitLine("panic: ", msg);
    detail::notifyLogEvent(detail::LogEvent::Panic, msg.c_str());
    std::abort();
}

/// Report a suspicious-but-survivable condition.
template <typename... Args>
void
warn(const Args &...args)
{
    detail::emitLine("warn: ", detail::concat(args...));
}

/// Report progress/status (to stderr so CSV on stdout stays clean).
template <typename... Args>
void
inform(const Args &...args)
{
    detail::emitLine("info: ", detail::concat(args...));
}

/**
 * warn() only if @p fired has never been set; returns true when this
 * call emitted the message. Safe to race: exactly one caller wins the
 * exchange. Usually used via WSS_WARN_ONCE.
 */
template <typename... Args>
bool
warnOnce(std::atomic<bool> &fired, const Args &...args)
{
    if (fired.exchange(true, std::memory_order_relaxed))
        return false;
    const std::string msg = detail::concat(args...);
    detail::notifyLogEvent(detail::LogEvent::WarnOnce, msg.c_str());
    warn(msg);
    return true;
}

/// warn() at most once per call site, process-wide.
#define WSS_WARN_ONCE(...)                                             \
    do {                                                               \
        static std::atomic<bool> wss_warn_once_fired_{false};          \
        ::wss::warnOnce(wss_warn_once_fired_, __VA_ARGS__);            \
    } while (0)

} // namespace wss

#endif // WSS_UTIL_LOGGING_HPP
