/**
 * @file
 * Minimal status/error reporting, in the spirit of gem5's logging.hh.
 *
 * fatal()  — the run cannot continue because of a user/configuration
 *            error (bad parameters, infeasible request); exits with 1.
 * panic()  — an internal invariant was violated (a wss bug); aborts.
 * warn()   — something is suspicious but the run continues.
 */

#ifndef WSS_UTIL_LOGGING_HPP
#define WSS_UTIL_LOGGING_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace wss {
namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/// Report a configuration/user error and exit(1).
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::cerr << "fatal: " << detail::concat(args...) << std::endl;
    std::exit(1);
}

/// Report an internal invariant violation and abort().
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::cerr << "panic: " << detail::concat(args...) << std::endl;
    std::abort();
}

/// Report a suspicious-but-survivable condition.
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::concat(args...) << std::endl;
}

/// Report progress/status (to stderr so CSV on stdout stays clean).
template <typename... Args>
void
inform(const Args &...args)
{
    std::cerr << "info: " << detail::concat(args...) << std::endl;
}

} // namespace wss

#endif // WSS_UTIL_LOGGING_HPP
