/**
 * @file
 * Minimal status/error reporting, in the spirit of gem5's logging.hh.
 *
 * fatal()  — the run cannot continue because of a user/configuration
 *            error (bad parameters, infeasible request); exits with 1.
 * panic()  — an internal invariant was violated (a wss bug); aborts.
 * warn()   — something is suspicious but the run continues.
 *
 * All emitters format the whole line first and write it to stderr as
 * a single operation under a shared mutex, so concurrent workers
 * (exec::Campaign) never interleave fragments of two messages. The
 * mutex is released before exit()/abort() so a fatal() on one thread
 * cannot deadlock another thread's warn().
 */

#ifndef WSS_UTIL_LOGGING_HPP
#define WSS_UTIL_LOGGING_HPP

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace wss {
namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

/// One process-wide mutex serializing every log line.
inline std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/// Write one already-formatted line to stderr atomically.
inline void
emitLine(std::string_view prefix, const std::string &msg)
{
    std::ostringstream line;
    line << prefix << msg << '\n';
    const std::string text = line.str();
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << text << std::flush;
}

} // namespace detail

/// Report a configuration/user error and exit(1).
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    detail::emitLine("fatal: ", detail::concat(args...));
    std::exit(1);
}

/// Report an internal invariant violation and abort().
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    detail::emitLine("panic: ", detail::concat(args...));
    std::abort();
}

/// Report a suspicious-but-survivable condition.
template <typename... Args>
void
warn(const Args &...args)
{
    detail::emitLine("warn: ", detail::concat(args...));
}

/// Report progress/status (to stderr so CSV on stdout stays clean).
template <typename... Args>
void
inform(const Args &...args)
{
    detail::emitLine("info: ", detail::concat(args...));
}

/**
 * warn() only if @p fired has never been set; returns true when this
 * call emitted the message. Safe to race: exactly one caller wins the
 * exchange. Usually used via WSS_WARN_ONCE.
 */
template <typename... Args>
bool
warnOnce(std::atomic<bool> &fired, const Args &...args)
{
    if (fired.exchange(true, std::memory_order_relaxed))
        return false;
    warn(args...);
    return true;
}

/// warn() at most once per call site, process-wide.
#define WSS_WARN_ONCE(...)                                             \
    do {                                                               \
        static std::atomic<bool> wss_warn_once_fired_{false};          \
        ::wss::warnOnce(wss_warn_once_fired_, __VA_ARGS__);            \
    } while (0)

} // namespace wss

#endif // WSS_UTIL_LOGGING_HPP
