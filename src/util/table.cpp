#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace wss {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    if (headers_.empty())
        throw std::invalid_argument("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument(
            "Table row width does not match header count");
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::formatInteger(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        for (std::size_t c = 0; c < width.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c]
               << std::string(width[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    os << "== " << title_ << " ==\n";
    rule();
    emit(headers_);
    rule();
    for (const auto &row : rows_)
        emit(row);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << quote(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace wss
