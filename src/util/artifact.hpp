/**
 * @file
 * Flush-checked artifact file writing.
 *
 * fatal() terminates via exit(1) without unwinding the stack, so an
 * `std::ofstream` open in an enclosing scope never runs its
 * destructor and silently drops buffered data — the classic way a
 * campaign dies mid-run and leaves a truncated CSV that *looks*
 * complete. writeArtifactFile() closes the sandwich: open, write,
 * flush, close, and only then check the stream — any failure is a
 * fatal() *after* the data that could be saved has been saved.
 */

#ifndef WSS_UTIL_ARTIFACT_HPP
#define WSS_UTIL_ARTIFACT_HPP

#include <fstream>
#include <string>

#include "util/logging.hpp"

namespace wss::util {

/**
 * Open @p path, run @p writer on the stream, then flush, close and
 * verify. fatal() with @p what in the message if the file cannot be
 * opened or any write failed.
 */
template <typename Writer>
void
writeArtifactFile(const std::string &path, std::string_view what,
                  Writer &&writer)
{
    std::ofstream os(path);
    if (!os)
        fatal(what, ": cannot open '", path, "' for writing");
    writer(os);
    os.flush();
    const bool ok = os.good();
    os.close();
    if (!ok || !os)
        fatal(what, ": error writing '", path, "' (disk full?)");
    detail::notifyLogEvent(detail::LogEvent::Artifact, path.c_str());
}

} // namespace wss::util

#endif // WSS_UTIL_ARTIFACT_HPP
