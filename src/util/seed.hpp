/**
 * @file
 * Stateless per-index seed derivation shared by every parallel
 * fan-out in the repo.
 *
 * exec::SweepRunner derives one seed per repetition and
 * fault::DefectSampler derives one per Monte-Carlo sample; both must
 * obey the same determinism contract (any thread can derive any
 * index's seed independently, in any order), so they share this one
 * implementation instead of keeping private copies.
 */

#ifndef WSS_UTIL_SEED_HPP
#define WSS_UTIL_SEED_HPP

#include <cstdint>

namespace wss {

/**
 * Stateless per-index substream derivation: index 0 returns @p base
 * unchanged; index i > 0 maps (base, i) through the splitmix64
 * finalizer — the same mixer Rng's constructor uses to expand seeds,
 * applied statelessly per index. Unlike Rng::split() it does not
 * depend on call order, so any thread can derive any index's seed
 * independently.
 */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    if (index == 0)
        return base;
    std::uint64_t z = base + index * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace wss

#endif // WSS_UTIL_SEED_HPP
