/**
 * @file
 * Plain-text result tables.
 *
 * Every bench binary reproduces one table or figure from the paper and
 * prints it as an aligned ASCII table (and optionally CSV). Table keeps
 * that output uniform across the ~25 experiment harnesses.
 */

#ifndef WSS_UTIL_TABLE_HPP
#define WSS_UTIL_TABLE_HPP

#include <concepts>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace wss {

/**
 * A column-aligned text table with a title and column headers.
 *
 * Cells are stored as strings; numeric convenience overloads format
 * with a fixed precision. Rendering pads each column to its widest
 * cell.
 */
class Table
{
  public:
    /// Create a table with a human-readable title and column headers.
    Table(std::string title, std::vector<std::string> headers);

    /// Append a fully formatted row; must match the header count.
    void addRow(std::vector<std::string> cells);

    /// Number of data rows added so far.
    std::size_t rowCount() const { return rows_.size(); }

    /// Format a double with @p precision decimals (trailing zeros kept).
    static std::string num(double v, int precision = 1);

    /// Format any integer type.
    template <typename T>
        requires std::integral<T>
    static std::string
    num(T v)
    {
        return formatInteger(static_cast<long long>(v));
    }

    /// Render as an aligned ASCII table.
    void print(std::ostream &os) const;

    /// Render as CSV (RFC-4180-ish quoting; headers first).
    void printCsv(std::ostream &os) const;

  private:
    static std::string formatInteger(long long v);

    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace wss

#endif // WSS_UTIL_TABLE_HPP
