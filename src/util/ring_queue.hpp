/**
 * @file
 * Growable FIFO ring buffer.
 *
 * A drop-in replacement for the std::deque queues on the simulator
 * hot path: contiguous storage, power-of-two capacity, and — the
 * property the zero-allocation invariant of the cycle loop rests on —
 * no allocation ever happens after the high-water mark is reached.
 */

#ifndef WSS_UTIL_RING_QUEUE_HPP
#define WSS_UTIL_RING_QUEUE_HPP

#include <cstddef>
#include <utility>
#include <vector>

namespace wss::util {

template <typename T>
class RingQueue
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    void
    push_back(T value)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & mask_] = std::move(value);
        ++size_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /// Pre-size to at least @p n slots (rounded up to a power of two).
    void
    reserve(std::size_t n)
    {
        while (slots_.size() < n)
            grow();
    }

  private:
    void
    grow()
    {
        const std::size_t cap =
            slots_.empty() ? 8 : slots_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(slots_[(head_ + i) & mask_]);
        slots_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
};

} // namespace wss::util

#endif // WSS_UTIL_RING_QUEUE_HPP
