/**
 * @file
 * Strong-ish unit helpers used across the waferscale-switch models.
 *
 * The design-space models in this repository mix many physical
 * quantities (bandwidth in Gbps, bandwidth density in Gbps/mm and
 * Gbps/mm^2, power in W and kW, energy in pJ/bit, area in mm^2).
 * To keep formulas readable we use plain doubles with documented
 * canonical units, plus a small set of conversion constants and
 * self-describing constructor helpers. Canonical units are:
 *
 *   - length:            mm
 *   - area:              mm^2
 *   - bandwidth:         Gbps
 *   - bandwidth density: Gbps/mm (linear), Gbps/mm^2 (areal)
 *   - power:             W
 *   - energy per bit:    pJ/bit
 *   - time:              ns
 */

#ifndef WSS_UTIL_UNITS_HPP
#define WSS_UTIL_UNITS_HPP

namespace wss {

/// Millimetres (canonical length unit).
using Millimeters = double;
/// Square millimetres (canonical area unit).
using SquareMillimeters = double;
/// Gigabits per second (canonical bandwidth unit).
using Gbps = double;
/// Gbps per mm of cross-section (linear bandwidth density).
using GbpsPerMm = double;
/// Gbps per mm^2 of substrate (areal bandwidth density).
using GbpsPerMm2 = double;
/// Watts (canonical power unit).
using Watts = double;
/// Picojoules per bit (canonical link-energy unit).
using PjPerBit = double;
/// Nanoseconds (canonical latency unit).
using Nanoseconds = double;
/// Volts.
using Volts = double;

namespace units {

/// 1 Tbps expressed in Gbps.
inline constexpr double kGbpsPerTbps = 1000.0;
/// 1 kW expressed in W.
inline constexpr double kWattsPerKilowatt = 1000.0;
/// 1 mm expressed in mm (identity; documents intent at call sites).
inline constexpr double kMm = 1.0;

/// Convert terabits/s to the canonical Gbps.
constexpr Gbps tbps(double v) { return v * kGbpsPerTbps; }
/// Convert kilowatts to the canonical W.
constexpr Watts kilowatts(double v) { return v * kWattsPerKilowatt; }
/// Convert W to kW for reporting.
constexpr double toKilowatts(Watts w) { return w / kWattsPerKilowatt; }
/// Convert Gbps to Tbps for reporting.
constexpr double toTbps(Gbps b) { return b / kGbpsPerTbps; }

/**
 * Power drawn by a link moving @p bandwidth at @p energy_per_bit.
 *
 * W = (Gbit/s * 1e9 bit/s/Gbit) * (pJ/bit * 1e-12 J/pJ) = Gbps * pJ/bit * 1e-3.
 */
constexpr Watts linkPower(Gbps bandwidth, PjPerBit energy_per_bit)
{
    return bandwidth * energy_per_bit * 1e-3;
}

} // namespace units
} // namespace wss

#endif // WSS_UTIL_UNITS_HPP
