#include "flow/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace wss::flow {

namespace {

/// One CDF breakpoint: P(size <= bytes) = cdf.
struct CdfPoint
{
    double bytes;
    double cdf;
};

// Empirical flow-size CDFs in the shape every flow-level DCN study
// uses: the DCTCP web-search trace and the Facebook hadoop trace,
// condensed to a handful of breakpoints (linear interpolation in
// between).
constexpr CdfPoint kWebSearch[] = {
    {6.0e3, 0.15},  {13.0e3, 0.20}, {19.0e3, 0.30}, {33.0e3, 0.40},
    {53.0e3, 0.53}, {133.0e3, 0.60}, {667.0e3, 0.70}, {1.3e6, 0.80},
    {3.3e6, 0.90},  {6.7e6, 0.95},  {20.0e6, 0.98}, {30.0e6, 1.00},
};

constexpr CdfPoint kHadoop[] = {
    {0.25e3, 0.30}, {0.5e3, 0.50}, {1.0e3, 0.60}, {2.0e3, 0.70},
    {10.0e3, 0.80}, {100.0e3, 0.90}, {1.0e6, 0.95}, {10.0e6, 0.99},
    {50.0e6, 1.00},
};

template <std::size_t N>
double
sampleCdf(const CdfPoint (&table)[N], double u)
{
    double b0 = 0.0;
    double c0 = 0.0;
    for (const auto &point : table) {
        if (u <= point.cdf) {
            const double span = point.cdf - c0;
            if (span <= 0.0)
                return point.bytes;
            return b0 + (u - c0) / span * (point.bytes - b0);
        }
        b0 = point.bytes;
        c0 = point.cdf;
    }
    return table[N - 1].bytes;
}

template <std::size_t N>
double
cdfMean(const CdfPoint (&table)[N])
{
    double mean = 0.0;
    double b0 = 0.0;
    double c0 = 0.0;
    for (const auto &point : table) {
        mean += (point.cdf - c0) * 0.5 * (b0 + point.bytes);
        b0 = point.bytes;
        c0 = point.cdf;
    }
    return mean;
}

double
sampleBytes(const DcnWorkloadSpec &spec, Rng &rng)
{
    switch (spec.dist) {
    case FlowSizeDist::Fixed:
        return spec.fixed_bytes;
    case FlowSizeDist::WebSearch:
        return sampleCdf(kWebSearch, rng.nextDouble());
    case FlowSizeDist::Hadoop:
        return sampleCdf(kHadoop, rng.nextDouble());
    }
    return spec.fixed_bytes;
}

double
distMeanBytes(const DcnWorkloadSpec &spec)
{
    switch (spec.dist) {
    case FlowSizeDist::Fixed: return spec.fixed_bytes;
    case FlowSizeDist::WebSearch: return cdfMean(kWebSearch);
    case FlowSizeDist::Hadoop: return cdfMean(kHadoop);
    }
    return spec.fixed_bytes;
}

} // namespace

std::string_view
toString(FlowSizeDist dist)
{
    switch (dist) {
    case FlowSizeDist::Fixed: return "fixed";
    case FlowSizeDist::WebSearch: return "websearch";
    case FlowSizeDist::Hadoop: return "hadoop";
    }
    return "?";
}

DcnWorkloadSpec
workloadByName(std::string_view name)
{
    DcnWorkloadSpec spec;
    spec.name = std::string(name);
    if (name == "websearch") {
        spec.dist = FlowSizeDist::WebSearch;
    } else if (name == "hadoop") {
        spec.dist = FlowSizeDist::Hadoop;
    } else if (name == "fixed") {
        spec.dist = FlowSizeDist::Fixed;
    } else if (name == "incast") {
        spec.dist = FlowSizeDist::WebSearch;
        spec.incast_fraction = 0.05;
        spec.incast_degree = 32;
    } else {
        fatal("unknown DCN workload '", name,
              "' (expected websearch, hadoop, fixed, or incast)");
    }
    return spec;
}

double
meanFlowBytes(const DcnWorkloadSpec &spec)
{
    const double base = distMeanBytes(spec);
    if (spec.incast_fraction <= 0.0 || spec.incast_degree <= 0)
        return base;
    // An arrival event is a burst with probability f, contributing
    // `degree` flows of incast_bytes; weight the per-flow mean
    // accordingly.
    const double f = std::min(spec.incast_fraction, 1.0);
    const double deg = static_cast<double>(spec.incast_degree);
    const double flows_per_event = (1.0 - f) + f * deg;
    const double bytes_per_event =
        (1.0 - f) * base + f * deg * spec.incast_bytes;
    return bytes_per_event / flows_per_event;
}

std::vector<FlowArrival>
generateFlows(const DcnWorkloadSpec &spec, std::int64_t hosts,
              double line_rate_gbps, std::uint64_t seed)
{
    if (hosts < 2)
        fatal("generateFlows: need at least 2 hosts, got ", hosts);
    if (spec.flow_count <= 0)
        fatal("generateFlows: flow_count must be positive");
    if (spec.load <= 0.0)
        fatal("generateFlows: load must be positive");

    // Arrival *events* per second so that offered bytes match the
    // target load of the aggregate host bandwidth.
    const double f = std::clamp(spec.incast_fraction, 0.0, 1.0);
    const double deg = static_cast<double>(std::max(1, spec.incast_degree));
    const double bytes_per_event =
        (1.0 - f) * distMeanBytes(spec) + f * deg * spec.incast_bytes;
    const double offered_bytes_s = spec.load *
                                   static_cast<double>(hosts) *
                                   line_rate_gbps * 1e9 / 8.0;
    const double event_rate = offered_bytes_s / bytes_per_event;

    Rng rng(seed);
    std::vector<FlowArrival> flows;
    flows.reserve(static_cast<std::size_t>(spec.flow_count));
    const auto n_hosts = static_cast<std::uint64_t>(hosts);
    double now = 0.0;
    std::uint64_t next_id = 0;
    while (static_cast<std::int64_t>(flows.size()) < spec.flow_count) {
        now += -std::log1p(-rng.nextDouble()) / event_rate;
        const bool incast = f > 0.0 && rng.nextDouble() < f;
        if (!incast) {
            FlowArrival flow;
            flow.id = next_id++;
            flow.arrival_s = now;
            flow.src_host =
                static_cast<std::int64_t>(rng.nextBelow(n_hosts));
            do {
                flow.dst_host =
                    static_cast<std::int64_t>(rng.nextBelow(n_hosts));
            } while (flow.dst_host == flow.src_host);
            flow.bytes = sampleBytes(spec, rng);
            flows.push_back(flow);
        } else {
            const auto victim =
                static_cast<std::int64_t>(rng.nextBelow(n_hosts));
            for (int s = 0;
                 s < spec.incast_degree &&
                 static_cast<std::int64_t>(flows.size()) <
                     spec.flow_count;
                 ++s) {
                FlowArrival flow;
                flow.id = next_id++;
                flow.arrival_s = now;
                flow.dst_host = victim;
                do {
                    flow.src_host = static_cast<std::int64_t>(
                        rng.nextBelow(n_hosts));
                } while (flow.src_host == victim);
                flow.bytes = spec.incast_bytes;
                flows.push_back(flow);
            }
        }
    }
    std::stable_sort(flows.begin(), flows.end(),
                     [](const FlowArrival &x, const FlowArrival &y) {
                         if (x.arrival_s != y.arrival_s)
                             return x.arrival_s < y.arrival_s;
                         return x.id < y.id;
                     });
    return flows;
}

} // namespace wss::flow
