/**
 * @file
 * Flow-level workloads for the multi-switch DCN simulator.
 *
 * Flows arrive as a Poisson process whose rate is chosen so the
 * aggregate offered bytes match a target fraction of the hosts'
 * line rate. Flow sizes come from empirical CDFs of the two
 * canonical datacenter traces (web-search and hadoop), a fixed
 * size, or those plus synchronized incast bursts — the workload mix
 * every flow-level DCN study runs.
 *
 * Generation is purely deterministic: the same spec, host count and
 * seed produce the same flow list on every platform, which is what
 * lets exec::Campaign fan DCN cells across threads while keeping the
 * CSV byte-identical.
 */

#ifndef WSS_FLOW_WORKLOAD_HPP
#define WSS_FLOW_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wss::flow {

/// Which flow-size distribution to draw from.
enum class FlowSizeDist
{
    /// Every flow is spec.fixed_bytes.
    Fixed,
    /// Web-search trace CDF (DCTCP): mostly mice, heavy elephant
    /// tail; mean ~1.6 MB.
    WebSearch,
    /// Hadoop trace CDF: dominated by sub-10 kB RPCs with a thin
    /// large-shuffle tail; mean ~270 kB.
    Hadoop,
};

std::string_view toString(FlowSizeDist dist);

/// One flow the simulator will run: @p src_host sends @p bytes to
/// @p dst_host starting at @p arrival_s.
struct FlowArrival
{
    std::uint64_t id = 0;
    double arrival_s = 0.0;
    std::int64_t src_host = 0;
    std::int64_t dst_host = 0;
    double bytes = 0.0;
};

/**
 * A flow workload recipe; see workloadByName() for the stock mixes.
 */
struct DcnWorkloadSpec
{
    /// Label carried into result rows.
    std::string name = "websearch";
    FlowSizeDist dist = FlowSizeDist::WebSearch;
    /// Target offered load as a fraction of aggregate host line
    /// rate; sets the Poisson arrival rate.
    double load = 0.3;
    /// Flows to generate (incast bursts count each fan-in flow).
    std::int64_t flow_count = 100000;
    /// Flow size when dist == Fixed (bytes).
    double fixed_bytes = 64.0 * 1024.0;
    /// Fraction of arrival events that become incast bursts:
    /// incast_degree distinct senders all firing at one victim at
    /// the same instant.
    double incast_fraction = 0.0;
    /// Fan-in of each incast burst.
    int incast_degree = 32;
    /// Bytes each incast sender contributes.
    double incast_bytes = 32.0 * 1024.0;
};

/**
 * Stock workloads: "websearch", "hadoop", "fixed", or "incast"
 * (web-search background plus 5% 32:1 bursts). fatal() on anything
 * else.
 */
DcnWorkloadSpec workloadByName(std::string_view name);

/// Mean flow size (bytes) the spec's distribution draws, including
/// the incast share — the quantity the Poisson rate is derived from.
double meanFlowBytes(const DcnWorkloadSpec &spec);

/**
 * Generate @p spec.flow_count flows over @p hosts hosts of
 * @p line_rate_gbps each, sorted by arrival time (ties by id).
 * Sources and destinations are uniform random distinct hosts.
 * Deterministic in @p seed.
 */
std::vector<FlowArrival> generateFlows(const DcnWorkloadSpec &spec,
                                       std::int64_t hosts,
                                       double line_rate_gbps,
                                       std::uint64_t seed);

} // namespace wss::flow

#endif // WSS_FLOW_WORKLOAD_HPP
