/**
 * @file
 * Multi-switch datacenter-network topologies for the flow-level
 * simulator — paper Section VIII.B at network scale.
 *
 * A DcnTopology wires whole switches (each modeled by a calibrated
 * flow::SwitchProfile) into a datacenter fabric: hosts hang off edge
 * switches, trunks join the switch tiers. The builders pick the
 * smallest fat-tree that covers the requested host count — a single
 * switch, a 2-tier leaf-spine, or a 3-tier pod fat-tree — which is
 * exactly the paper's argument: a waferscale radix collapses tiers
 * that a 64-port baseline needs. A canonical dragonfly builder
 * covers the direct-topology alternative.
 *
 * Routing is ECMP over live shortest paths: per-destination-edge BFS
 * distance tables, next hop chosen by a deterministic flow hash.
 * Killing a switch or trunk invalidates the tables; rebuildRoutes()
 * recomputes them over the survivors, which is how fault:: events
 * drive mid-simulation reroutes.
 */

#ifndef WSS_FLOW_DCN_TOPOLOGY_HPP
#define WSS_FLOW_DCN_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace wss::flow {

/// Which DCN fabric shape to build.
enum class DcnKind
{
    /// Smallest fat-tree covering the hosts (1, 2 or 3 tiers).
    FatTree,
    /// Canonical balanced dragonfly (p = k/4, a = k/2, h = k/4).
    Dragonfly,
};

std::string_view toString(DcnKind kind);

/// One trunk bundle between two switches.
struct DcnLink
{
    int a = 0;
    int b = 0;
    /// Parallel cables in the bundle.
    int trunks = 1;
    /// Aggregate capacity per direction (Gbps).
    double gbps = 0.0;
};

/// A concrete path through the DCN (hosts implied by the flow).
struct DcnPath
{
    /// Switch ids in traversal order (>= 1 entries).
    std::vector<int> switches;
    /// Trunk link ids in traversal order (switches.size() - 1
    /// entries) with the traversal direction: bit 0 set means the
    /// b->a direction of the link, so (id << 1 | dir) is the
    /// directional resource the flow engine allocates on.
    std::vector<int> directed_links;
};

/**
 * A multi-switch network of one switch design.
 */
class DcnTopology
{
  public:
    /**
     * Smallest fat-tree of radix-@p radix switches covering
     * @p hosts hosts at @p line_rate_gbps per host: one switch when
     * hosts <= radix, a 2-tier leaf-spine up to radix^2/2, a 3-tier
     * pod fat-tree up to radix^3/4 (fatal beyond). @p radix must be
     * even and >= 4.
     */
    static DcnTopology buildFatTree(std::int64_t hosts, int radix,
                                    double line_rate_gbps);

    /**
     * Balanced dragonfly of radix-@p radix switches: k/4 hosts per
     * switch, k/2 switches per group, k/4 global trunks per switch,
     * groups sized to cover @p hosts (>= 2 groups; fatal when the
     * global-link budget cannot reach the group count). @p radix
     * must be divisible by 4.
     */
    static DcnTopology buildDragonfly(std::int64_t hosts, int radix,
                                      double line_rate_gbps);

    const std::string &name() const { return name_; }
    DcnKind kind() const { return kind_; }
    /// Switch tiers (1 = single switch; dragonfly reports 1).
    int tiers() const { return tiers_; }
    int switchRadix() const { return radix_; }
    double lineRateGbps() const { return line_rate_gbps_; }

    std::int64_t hostCount() const
    {
        return static_cast<std::int64_t>(host_edge_.size());
    }
    int switchCount() const { return static_cast<int>(alive_.size()); }
    const std::vector<DcnLink> &links() const { return links_; }

    /// Edge switch host @p host hangs off.
    int edgeOf(std::int64_t host) const
    {
        return host_edge_[static_cast<std::size_t>(host)];
    }

    /// Cables in the plant: one per host plus one per trunk.
    std::int64_t cableCount() const;

    /// Switch-level worst-case hop count between hosts (switches
    /// traversed; >= 1). Uses the live distance tables.
    int worstCaseHops() const;

    // --- fault state -------------------------------------------------

    bool switchAlive(int id) const { return alive_[id] != 0; }
    bool linkAlive(int id) const { return link_alive_[id] != 0; }

    /// Mark a switch (and implicitly every trunk touching it) up or
    /// down. Call rebuildRoutes() afterwards.
    void setSwitchAlive(int id, bool up);
    /// Mark one trunk bundle up or down. Call rebuildRoutes() after.
    void setLinkAlive(int id, bool up);

    /// Recompute the per-destination distance tables over the live
    /// switches and trunks. Idempotent; called by the builders.
    void rebuildRoutes();
    /// True when a kill/restore happened since the last rebuild.
    bool routesDirty() const { return routes_dirty_; }

    // --- routing -----------------------------------------------------

    /**
     * ECMP route for one flow: walk from @p src_host's edge switch
     * toward @p dst_host's, choosing uniformly among the live
     * minimal next hops by a deterministic hash of (@p flow_id, hop).
     * Returns false when no live path exists (dead edge switch or
     * partitioned fabric). @p out is cleared first.
     */
    bool route(std::int64_t src_host, std::int64_t dst_host,
               std::uint64_t flow_id, DcnPath *out) const;

  private:
    DcnTopology() = default;

    int addSwitch(int hosts_attached);
    void addTrunk(int a, int b, int trunks);
    void finalize();

    std::string name_;
    DcnKind kind_ = DcnKind::FatTree;
    int tiers_ = 1;
    int radix_ = 0;
    double line_rate_gbps_ = 0.0;

    std::vector<int> host_edge_;
    std::vector<DcnLink> links_;
    /// Per switch: (neighbor switch, link id), construction order.
    std::vector<std::vector<std::pair<int, int>>> adj_;
    std::vector<char> alive_;
    std::vector<char> link_alive_;

    /// Edge switches (those with hosts) and, per edge switch, the
    /// BFS distance (in trunks) from every switch; -1 = unreachable.
    std::vector<int> edge_switches_;
    std::vector<int> edge_index_; // per switch, -1 when not an edge
    std::vector<std::vector<int>> dist_;
    bool routes_dirty_ = true;
};

} // namespace wss::flow

#endif // WSS_FLOW_DCN_TOPOLOGY_HPP
