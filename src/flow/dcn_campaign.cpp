#include "flow/dcn_campaign.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "exec/campaign.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"
#include "util/seed.hpp"
#include "util/table.hpp"

namespace wss::flow {

namespace {

/// Seed-stream offset keeping fault sampling disjoint from workload
/// generation within one cell.
constexpr std::uint64_t kFaultStream = 0xfa17u << 16;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

DcnCampaign::DcnCampaign(DcnCampaignConfig config)
    : config_(std::move(config))
{
    if (config_.designs.empty() || config_.workloads.empty() ||
        config_.loads.empty())
        fatal("DcnCampaign: every sweep axis needs at least one value");
    if (config_.hosts < 2)
        fatal("DcnCampaign: need at least 2 hosts, got ",
              config_.hosts);
    if (config_.flows_per_cell < 1)
        fatal("DcnCampaign: flows_per_cell must be positive");
    for (const auto &design : config_.designs)
        if (design.radix <= 0 || design.line_rate_gbps <= 0.0)
            fatal("DcnCampaign: design '", design.name,
                  "' lacks a positive radix/line rate — was it "
                  "calibrated?");
    for (double load : config_.loads)
        if (load <= 0.0)
            fatal("DcnCampaign: loads must be positive");
}

DcnResult
DcnCampaign::run(exec::ThreadPool *pool, obs::TraceEventSink *trace,
                 obs::Profiler *profiler) const
{
    const auto &cfg = config_;
    const std::size_t n_d = cfg.designs.size();
    const std::size_t n_w = cfg.workloads.size();
    const std::size_t n_l = cfg.loads.size();

    DcnResult result;
    result.cells.resize(n_d * n_w * n_l);

    exec::Campaign campaign;
    for (std::size_t di = 0; di < n_d; ++di)
        for (std::size_t wi = 0; wi < n_w; ++wi)
            for (std::size_t li = 0; li < n_l; ++li) {
                const std::size_t slot = (di * n_w + wi) * n_l + li;
                const std::uint64_t cell_seed =
                    deriveSeed(cfg.seed, slot + 1);
                DcnCellResult *out = &result.cells[slot];
                std::ostringstream name;
                name << cfg.designs[di].name << "/"
                     << cfg.workloads[wi].name
                     << "/l=" << cfg.loads[li];
                campaign.addTask(name.str(),
                                 [this, di, wi, li, cell_seed, out] {
                                     *out = runCell(di, wi, li,
                                                    cell_seed);
                                 });
            }

    const exec::CampaignResult campaign_result =
        campaign.run(pool, trace, profiler);
    result.wall_seconds = campaign_result.wall_seconds;
    result.threads = campaign_result.threads;
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        result.cells[i].seconds = campaign_result.jobs[i].seconds;
    return result;
}

DcnCellResult
DcnCampaign::runCell(std::size_t di, std::size_t wi, std::size_t li,
                     std::uint64_t cell_seed) const
{
    const auto &cfg = config_;
    const SwitchProfile &profile = cfg.designs[di];

    DcnTopology topo =
        cfg.kind == DcnKind::FatTree
            ? DcnTopology::buildFatTree(
                  cfg.hosts, static_cast<int>(profile.radix),
                  profile.line_rate_gbps)
            : DcnTopology::buildDragonfly(
                  cfg.hosts, static_cast<int>(profile.radix),
                  profile.line_rate_gbps);

    DcnWorkloadSpec workload = cfg.workloads[wi];
    workload.load = cfg.loads[li];
    workload.flow_count = cfg.flows_per_cell;
    const std::vector<FlowArrival> flows = generateFlows(
        workload, topo.hostCount(), profile.line_rate_gbps, cell_seed);

    fault::DcnFaultSchedule faults;
    if (cfg.fault_model.node_field_failure > 0.0 && !flows.empty()) {
        // Mission window = the arrival window, so sampled kills land
        // while traffic is in flight.
        const double window = flows.back().arrival_s;
        if (window > 0.0)
            faults = fault::DcnFaultSchedule::sampleSwitchFailures(
                cfg.fault_model, topo.switchCount(), window,
                deriveSeed(cell_seed, kFaultStream));
    }

    DcnCellResult cell;
    cell.design = profile.name;
    cell.topology = topo.name();
    cell.workload = workload.name;
    cell.load = cfg.loads[li];
    cell.hosts = topo.hostCount();
    cell.switches = topo.switchCount();
    cell.tiers = topo.tiers();
    cell.cables = topo.cableCount();
    cell.worst_hops = topo.worstCaseHops();
    cell.power_kw = static_cast<double>(topo.switchCount()) *
                    profile.power_watts / 1000.0;
    cell.sim = simulateFlows(topo, profile, flows, faults);
    return cell;
}

void
DcnResult::writeCsv(std::ostream &os) const
{
    // Provenance only — deliberately no wall-clock and no thread
    // count, so the same (config, seed) produces a byte-identical
    // file at any --jobs value.
    os << "# wss dcn campaign\n";
    os << "# cells=" << cells.size() << "\n";

    Table table("dcn",
                {"design", "topology", "workload", "load", "hosts",
                 "switches", "tiers", "cables", "worst_hops",
                 "power_kw", "flows", "completed", "failed",
                 "rerouted", "fault_events", "avg_hops",
                 "throughput_gbps", "fct_avg_us", "fct_p50_us",
                 "fct_p99_us", "fct_p999_us", "slowdown_avg",
                 "slowdown_p50", "slowdown_p99", "slowdown_p999"});
    for (const auto &cell : cells) {
        const auto &sim = cell.sim;
        table.addRow(
            {cell.design, cell.topology, cell.workload,
             Table::num(cell.load, 4), Table::num(cell.hosts),
             Table::num(cell.switches), Table::num(cell.tiers),
             Table::num(cell.cables), Table::num(cell.worst_hops),
             Table::num(cell.power_kw, 3), Table::num(sim.started),
             Table::num(sim.completed), Table::num(sim.failed),
             Table::num(sim.rerouted), Table::num(sim.fault_events),
             Table::num(sim.avg_hops, 3),
             Table::num(sim.throughput_gbps, 3),
             Table::num(sim.fct_avg_s * 1e6, 3),
             Table::num(sim.fct_p50_s * 1e6, 3),
             Table::num(sim.fct_p99_s * 1e6, 3),
             Table::num(sim.fct_p999_s * 1e6, 3),
             Table::num(sim.slowdown_avg, 3),
             Table::num(sim.slowdown_p50, 3),
             Table::num(sim.slowdown_p99, 3),
             Table::num(sim.slowdown_p999, 3)});
    }
    table.printCsv(os);
}

void
DcnResult::writeJson(std::ostream &os) const
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"threads\": " << threads << ",\n  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &s = c.sim;
        os << (i ? ",\n" : "\n") << "    {\"design\": \""
           << jsonEscape(c.design) << "\", \"topology\": \""
           << jsonEscape(c.topology) << "\", \"workload\": \""
           << jsonEscape(c.workload) << "\", \"load\": " << c.load
           << ", \"hosts\": " << c.hosts
           << ", \"switches\": " << c.switches
           << ", \"tiers\": " << c.tiers << ", \"cables\": " << c.cables
           << ", \"worst_hops\": " << c.worst_hops
           << ", \"power_kw\": " << c.power_kw
           << ", \"flows\": " << s.started
           << ", \"completed\": " << s.completed
           << ", \"failed\": " << s.failed
           << ", \"rerouted\": " << s.rerouted
           << ", \"fault_events\": " << s.fault_events
           << ", \"avg_hops\": " << s.avg_hops
           << ", \"throughput_gbps\": " << s.throughput_gbps
           << ", \"fct_avg_s\": " << s.fct_avg_s
           << ", \"fct_p50_s\": " << s.fct_p50_s
           << ", \"fct_p99_s\": " << s.fct_p99_s
           << ", \"fct_p999_s\": " << s.fct_p999_s
           << ", \"slowdown_avg\": " << s.slowdown_avg
           << ", \"slowdown_p50\": " << s.slowdown_p50
           << ", \"slowdown_p99\": " << s.slowdown_p99
           << ", \"slowdown_p999\": " << s.slowdown_p999
           << ", \"seconds\": " << c.seconds << "}";
    }
    os << "\n  ]\n}\n";
}

void
DcnResult::writeCsvFile(const std::string &path) const
{
    util::writeArtifactFile(path, "DcnResult",
                            [this](std::ostream &os) { writeCsv(os); });
}

void
DcnResult::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(path, "DcnResult",
                            [this](std::ostream &os) { writeJson(os); });
}

} // namespace wss::flow
