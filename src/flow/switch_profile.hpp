/**
 * @file
 * Load–latency profiles of whole switches, calibrated from the
 * cycle-accurate fabric simulator.
 *
 * The flow-level DCN simulator (flow::FlowSimulator) models each
 * switch of a multi-switch network as a black box with a latency
 * that depends on its offered load. A SwitchProfile is that box:
 * a piecewise-linear latency-vs-load curve plus the saturation
 * throughput, obtained by sweeping the *cycle-accurate* simulator
 * (`sim::`) over the switch's internal chiplet fabric — so the DCN
 * results inherit the fidelity of Figs. 21-24 without re-simulating
 * every flit at datacenter scale.
 *
 * Profiles serialize to a small JSON document and load back
 * bit-exactly (numbers round-trip through max_digits10), so a
 * calibration is run once per switch design and reused by every
 * DCN campaign.
 */

#ifndef WSS_FLOW_SWITCH_PROFILE_HPP
#define WSS_FLOW_SWITCH_PROFILE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"
#include "power/ssc.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace wss::flow {

/// One calibrated point of the latency-vs-load curve.
struct ProfilePoint
{
    /// Offered load (fraction of per-port line rate).
    double offered = 0.0;
    /// Mean packet latency at that load (fabric cycles).
    double avg_latency = 0.0;
    /// 99th-percentile packet latency (fabric cycles).
    double p99_latency = 0.0;
};

/**
 * A whole switch condensed to what the flow-level simulator needs.
 */
struct SwitchProfile
{
    /// Design label ("ws-6400", "th5-64", ...).
    std::string name;
    /// External ports (the DCN-level radix of this switch).
    std::int64_t radix = 0;
    /// Per-port line rate (Gbps).
    double line_rate_gbps = 0.0;
    /// Wall-clock seconds per fabric cycle (converts the calibrated
    /// cycle latencies to seconds; a 200G port moving 64 B flits
    /// runs one flit time in 2.56 ns).
    double cycle_seconds = 2.56e-9;
    /// Total switch power (W) — the solver's breakdown for the
    /// waferscale design, an SSC+I/O estimate otherwise.
    double power_watts = 0.0;
    /// Zero-load latency (cycles), from the sweep's lowest point.
    double zero_load_latency = 0.0;
    /// Highest stable offered load (fraction of line rate). Flow-
    /// level link capacities are derated by this factor, so a fabric
    /// that saturates at 62% cannot be driven past it at DCN scale
    /// either.
    double saturation = 1.0;
    /// Stable sweep points, ascending in offered load.
    std::vector<ProfilePoint> points;

    /// Mean latency at @p offered (fraction of line rate):
    /// piecewise-linear through (0, zero_load_latency) and the
    /// calibrated points, clamped at the last point beyond it.
    double latencyCycles(double offered) const;

    /// p99 latency at @p offered, same interpolation.
    double p99LatencyCycles(double offered) const;

    /// latencyCycles() converted to seconds.
    double
    latencySeconds(double offered) const
    {
        return latencyCycles(offered) * cycle_seconds;
    }

    /// Serialize as a standalone JSON document (full precision).
    void writeJson(std::ostream &os) const;
    /// Flush-checked file counterpart (fatal on I/O error).
    void writeJsonFile(const std::string &path) const;

    /// Parse a document produced by writeJson(); fatal() on
    /// malformed input or missing fields.
    static SwitchProfile fromJson(std::istream &is);
    /// fromJson() on @p path; fatal() when the file cannot be read.
    static SwitchProfile loadJsonFile(const std::string &path);
};

/**
 * Everything calibrateSwitchProfile() needs: the switch's internal
 * fabric and the load sweep to run on it.
 */
struct CalibrationSpec
{
    /// Profile label.
    std::string name;
    /// External ports; must be a positive multiple of ssc.radix / 2
    /// (the switch's internal fabric is a 2-level folded Clos of
    /// these chiplets, exactly like the paper's waferscale switch).
    std::int64_t ports = 512;
    /// Sub-switch chiplet of the internal fabric.
    power::SscConfig ssc;
    /// Offered loads to sweep (fractions of line rate). Empty picks
    /// sim::geometricRates(0.05, 0.95, 7).
    std::vector<double> rates;
    /// Flits per packet in the calibration runs.
    int packet_flits = 4;
    /// Router/channel parameters of the internal fabric.
    sim::NetworkSpec net_spec;
    /// Phase configuration (cfg.seed is the calibration's base seed).
    sim::SimConfig sim_cfg;
    /// Carried into the profile verbatim.
    double cycle_seconds = 2.56e-9;
    double power_watts = 0.0;
};

/**
 * Run the cycle-accurate load sweep for @p spec and condense it to a
 * SwitchProfile. Points execute through exec::SweepRunner, so a
 * pool parallelizes the sweep while the profile stays bit-identical
 * to the serial run. Unstable (saturated) points contribute to the
 * saturation estimate but are excluded from the latency curve.
 * @p profiler, when given, times the whole calibration as a
 * "calibrate" phase with the sweep's per-point phases nested below.
 */
SwitchProfile calibrateSwitchProfile(const CalibrationSpec &spec,
                                     exec::ThreadPool *pool = nullptr,
                                     obs::TraceEventSink *trace = nullptr,
                                     obs::Profiler *profiler = nullptr);

} // namespace wss::flow

#endif // WSS_FLOW_SWITCH_PROFILE_HPP
