#include "flow/flow_sim.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <ostream>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"
#include "util/stats_accumulator.hpp"

namespace wss::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shortest round-trip decimal form (same idiom as
/// SimObservation::dumpCsv), so telemetry CSVs are bit-identical
/// across runs and lossless to parse back.
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}
/// Residual bytes below which a transfer counts as delivered —
/// far under one byte yet far above the fp error of advancing a
/// multi-megabyte flow to its own completion instant.
constexpr double kEpsBytes = 1e-6;

/// One in-flight transfer.
struct ActiveFlow
{
    std::uint64_t id = 0;
    double arrival_s = 0.0;
    double bytes = 0.0;
    double remaining = 0.0;
    /// Current max-min rate (bytes/s), set by the waterfill.
    double rate = 0.0;
    /// Calibrated switch-traversal latency, fixed at flow start.
    double latency_s = 0.0;
    std::int64_t src = 0;
    std::int64_t dst = 0;
    /// Directional resources: src NIC tx, trunk directions, dst NIC
    /// rx.
    std::vector<int> res;
    std::vector<int> switches;
    /// Undirected trunk ids (for fault matching).
    std::vector<int> links;
};

} // namespace

void
verifyFlowConservation(std::int64_t started, std::int64_t completed,
                       std::int64_t failed, std::int64_t in_flight)
{
    if (started != completed + failed + in_flight)
        panic("flow conservation violated: started=", started,
              " != completed=", completed, " + failed=", failed,
              " + in-flight=", in_flight);
}

std::int64_t
FlowTelemetry::totalStarted() const
{
    std::int64_t total = 0;
    for (const Window &w : windows)
        total += w.started;
    return total;
}

std::int64_t
FlowTelemetry::totalCompleted() const
{
    std::int64_t total = 0;
    for (const Window &w : windows)
        total += w.completed;
    return total;
}

std::int64_t
FlowTelemetry::totalFailed() const
{
    std::int64_t total = 0;
    for (const Window &w : windows)
        total += w.failed;
    return total;
}

double
FlowTelemetry::linkUtilization(std::size_t w, std::size_t link) const
{
    if (w >= windows.size() || link >= link_capacity_bps.size())
        panic("FlowTelemetry::linkUtilization: window ", w, "/link ",
              link, " out of range (", windows.size(), " windows, ",
              link_capacity_bps.size(), " links)");
    const double cap = link_capacity_bps[link];
    if (cap <= 0.0 || window_s <= 0.0)
        return 0.0;
    const auto &bytes = windows[w].link_bytes;
    return (link < bytes.size() ? bytes[link] : 0.0) /
           (cap * window_s);
}

void
FlowTelemetry::dumpCsv(std::ostream &os) const
{
    os << "# wss flow telemetry\n";
    os << "# windows=" << windows.size() << " window_s="
       << formatDouble(window_s) << " links="
       << link_capacity_bps.size() << "\n";
    os << "record,window,scope,metric,value\n";

    for (std::size_t l = 0; l < link_capacity_bps.size(); ++l)
        os << "capacity,run,t" << l << ",bytes_per_s,"
           << formatDouble(link_capacity_bps[l]) << "\n";

    for (std::size_t w = 0; w < windows.size(); ++w) {
        const Window &win = windows[w];
        os << "window," << w << ",-,started," << win.started << "\n";
        os << "window," << w << ",-,completed," << win.completed
           << "\n";
        os << "window," << w << ",-,failed," << win.failed << "\n";
        os << "window," << w << ",-,in_flight_end,"
           << win.in_flight_end << "\n";
        os << "window," << w << ",-,completed_bytes,"
           << formatDouble(win.completed_bytes) << "\n";
    }

    // Only trunks that carried bytes: quiet links would dominate the
    // file without informing the congestion picture.
    for (std::size_t w = 0; w < windows.size(); ++w)
        for (std::size_t l = 0; l < windows[w].link_bytes.size(); ++l)
            if (windows[w].link_bytes[l] > 0.0) {
                os << "link," << w << ",t" << l << ",bytes,"
                   << formatDouble(windows[w].link_bytes[l]) << "\n";
                os << "link," << w << ",t" << l << ",utilization,"
                   << formatDouble(linkUtilization(w, l)) << "\n";
            }

    double total_bytes = 0.0;
    for (const Window &w : windows)
        total_bytes += w.completed_bytes;
    os << "total,run,-,started," << totalStarted() << "\n";
    os << "total,run,-,completed," << totalCompleted() << "\n";
    os << "total,run,-,failed," << totalFailed() << "\n";
    os << "total,run,-,completed_bytes," << formatDouble(total_bytes)
       << "\n";
}

void
FlowTelemetry::dumpCsvFile(const std::string &path) const
{
    util::writeArtifactFile(path, "FlowTelemetry",
                            [this](std::ostream &os) { dumpCsv(os); });
}

FlowSimResult
simulateFlows(DcnTopology &topo, const SwitchProfile &profile,
              const std::vector<FlowArrival> &flows,
              const fault::DcnFaultSchedule &faults,
              const FlowSimConfig &cfg)
{
    obs::ScopedPhase run_phase(cfg.profiler, "flow-sim");

    const std::int64_t hosts = topo.hostCount();
    if (hosts < 1)
        fatal("simulateFlows: topology has no hosts");
    if (profile.saturation <= 0.0 || profile.line_rate_gbps <= 0.0)
        fatal("simulateFlows: profile must have positive saturation "
              "and line rate");
    for (const auto &flow : flows) {
        if (flow.src_host < 0 || flow.src_host >= hosts ||
            flow.dst_host < 0 || flow.dst_host >= hosts)
            fatal("simulateFlows: flow ", flow.id,
                  " references a host outside [0, ", hosts, ")");
        if (flow.bytes < 0.0)
            fatal("simulateFlows: flow ", flow.id, " has negative size ",
                  flow.bytes);
    }
    if (topo.routesDirty())
        topo.rebuildRoutes();

    // --- resources: 2 per host NIC, 2 per trunk direction, all
    // derated by the calibrated fabric saturation -----------------
    const double line_bytes = topo.lineRateGbps() * 1e9 / 8.0;
    const double sat = std::min(profile.saturation, 1.0);
    const int host_res = static_cast<int>(2 * hosts);
    const std::size_t n_res =
        static_cast<std::size_t>(host_res) + 2 * topo.links().size();
    std::vector<double> cap(n_res, 0.0);
    for (std::int64_t h = 0; h < hosts; ++h)
        cap[static_cast<std::size_t>(2 * h)] =
            cap[static_cast<std::size_t>(2 * h + 1)] = line_bytes * sat;
    for (std::size_t l = 0; l < topo.links().size(); ++l)
        cap[static_cast<std::size_t>(host_res) + 2 * l] =
            cap[static_cast<std::size_t>(host_res) + 2 * l + 1] =
                topo.links()[l].gbps * 1e9 / 8.0 * sat;

    // --- instruments ---------------------------------------------
    obs::Counter c_started, c_completed, c_failed, c_rerouted, c_fault;
    obs::Histogram h_slowdown;
    if (cfg.metrics) {
        c_started = cfg.metrics->counter("flow.started");
        c_completed = cfg.metrics->counter("flow.completed");
        c_failed = cfg.metrics->counter("flow.failed");
        c_rerouted = cfg.metrics->counter("flow.rerouted");
        c_fault = cfg.metrics->counter("flow.fault_events");
        h_slowdown = cfg.metrics->histogram(
            "flow.slowdown",
            {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
    }

    StatsAccumulator fct_acc, slow_acc, hops_acc;
    QuantileSampler fct_q, slow_q;
    fct_q.reserve(flows.size());
    slow_q.reserve(flows.size());

    // --- telemetry (pure observation: nothing below feeds back into
    // the event sequence, so results are bit-identical on/off) ------
    std::shared_ptr<FlowTelemetry> telemetry;
    if (cfg.telemetry_window_s > 0.0) {
        telemetry = std::make_shared<FlowTelemetry>();
        telemetry->window_s = cfg.telemetry_window_s;
        telemetry->link_capacity_bps.resize(topo.links().size());
        for (std::size_t l = 0; l < topo.links().size(); ++l)
            telemetry->link_capacity_bps[l] =
                topo.links()[l].gbps * 1e9 / 8.0 * sat;
    }
    const auto windowAt = [&](double t) -> FlowTelemetry::Window & {
        const auto w = static_cast<std::size_t>(
            std::max(t, 0.0) / telemetry->window_s);
        while (telemetry->windows.size() <= w) {
            telemetry->windows.emplace_back();
            telemetry->windows.back().link_bytes.resize(
                topo.links().size(), 0.0);
        }
        return telemetry->windows[w];
    };
    const auto recordFlow = [&](std::uint64_t id, std::int64_t src,
                                std::int64_t dst, double bytes,
                                double fct, bool failed_flow) {
        if (cfg.flow_records)
            cfg.flow_records->push_back(
                {id, src, dst, bytes, fct, failed_flow});
    };

    // --- engine state --------------------------------------------
    std::vector<ActiveFlow> active;
    std::vector<std::vector<int>> users(n_res);
    std::vector<int> touched;
    std::vector<double> remcap(n_res, 0.0);
    std::vector<int> cnt(n_res, 0);
    std::vector<char> frozen;
    std::vector<double> sw_rate(
        static_cast<std::size_t>(topo.switchCount()), 0.0);

    const auto sorted_faults = faults.sorted();
    std::size_t i_arr = 0;
    std::size_t i_fault = 0;
    std::int64_t started = 0, completed = 0, failed = 0, rerouted = 0;
    std::int64_t fault_events = 0;
    double now = 0.0;
    double last_completion = 0.0;
    double completed_bytes = 0.0;
    DcnPath path; // route() scratch

    const auto buildResources = [&](const DcnPath &p, ActiveFlow &f) {
        f.switches = p.switches;
        f.links.clear();
        f.res.clear();
        f.res.push_back(static_cast<int>(2 * f.src));
        for (int dl : p.directed_links) {
            f.links.push_back(dl >> 1);
            f.res.push_back(host_res + dl);
        }
        f.res.push_back(static_cast<int>(2 * f.dst + 1));
    };

    // Progressive waterfill: freeze the bottleneck resource's flows
    // at its fair share, deduct, repeat — textbook max-min. Only
    // resources touched by active flows are visited.
    const auto recompute = [&]() {
        obs::ScopedPhase phase(cfg.profiler, "waterfill");
        const int n = static_cast<int>(active.size());
        for (int f = 0; f < n; ++f)
            for (int r : active[static_cast<std::size_t>(f)].res) {
                auto &list = users[static_cast<std::size_t>(r)];
                if (list.empty())
                    touched.push_back(r);
                list.push_back(f);
            }
        frozen.assign(static_cast<std::size_t>(n), 0);
        for (int r : touched) {
            remcap[static_cast<std::size_t>(r)] =
                cap[static_cast<std::size_t>(r)];
            cnt[static_cast<std::size_t>(r)] = static_cast<int>(
                users[static_cast<std::size_t>(r)].size());
        }
        int unfrozen = n;
        while (unfrozen > 0) {
            double best = kInf;
            int bottleneck = -1;
            for (int r : touched)
                if (cnt[static_cast<std::size_t>(r)] > 0) {
                    const double fair =
                        remcap[static_cast<std::size_t>(r)] /
                        cnt[static_cast<std::size_t>(r)];
                    if (fair < best) {
                        best = fair;
                        bottleneck = r;
                    }
                }
            if (bottleneck < 0)
                panic("flow waterfill: ", unfrozen,
                      " unfrozen flows but no loaded resource");
            best = std::max(best, 0.0);
            for (int f : users[static_cast<std::size_t>(bottleneck)]) {
                if (frozen[static_cast<std::size_t>(f)])
                    continue;
                frozen[static_cast<std::size_t>(f)] = 1;
                active[static_cast<std::size_t>(f)].rate = best;
                --unfrozen;
                for (int r : active[static_cast<std::size_t>(f)].res)
                    if (r != bottleneck) {
                        remcap[static_cast<std::size_t>(r)] -= best;
                        --cnt[static_cast<std::size_t>(r)];
                    }
            }
            cnt[static_cast<std::size_t>(bottleneck)] = 0;
        }
        for (int r : touched)
            users[static_cast<std::size_t>(r)].clear();
        touched.clear();
        // Per-switch throughput feeding the latency lookups of the
        // *next* arrivals.
        std::fill(sw_rate.begin(), sw_rate.end(), 0.0);
        for (const auto &f : active)
            for (int sw : f.switches)
                sw_rate[static_cast<std::size_t>(sw)] += f.rate;
    };

    // Approximate per-port offered load of one switch: its total
    // flow throughput spread over its radix. What the calibrated
    // latency curve is indexed by.
    const auto switchOffered = [&](int sw) {
        const double denom =
            static_cast<double>(topo.switchRadix()) * line_bytes;
        return std::clamp(sw_rate[static_cast<std::size_t>(sw)] / denom,
                          0.0, 1.0);
    };

    const auto pathLatency = [&](const std::vector<int> &switches) {
        double total = 0.0;
        for (int sw : switches)
            total += profile.latencySeconds(switchOffered(sw));
        return total;
    };

    const auto recordCompletion = [&](double fct, double ideal,
                                      double bytes, double finish_s) {
        const double slowdown = ideal > 0.0 ? fct / ideal : 1.0;
        fct_acc.add(fct);
        fct_q.add(fct);
        slow_acc.add(slowdown);
        slow_q.add(slowdown);
        h_slowdown.record(slowdown);
        completed_bytes += bytes;
        ++completed;
        c_completed.inc();
        last_completion = std::max(last_completion, finish_s);
        if (telemetry) {
            FlowTelemetry::Window &w = windowAt(finish_s);
            ++w.completed;
            w.completed_bytes += bytes;
        }
    };

    const auto idealSeconds = [&](double bytes, std::size_t hops) {
        return bytes / line_bytes +
               profile.zero_load_latency * profile.cycle_seconds *
                   static_cast<double>(hops);
    };

    const auto completeFlow = [&](const ActiveFlow &f) {
        const double fct = (now - f.arrival_s) + f.latency_s;
        recordCompletion(fct, idealSeconds(f.bytes, f.switches.size()),
                         f.bytes, now);
        recordFlow(f.id, f.src, f.dst, f.bytes, fct, false);
    };

    const auto applyFault = [&](const fault::DcnFaultEvent &ev) {
        const char *label = "?";
        switch (ev.kind) {
        case fault::DcnFaultKind::SwitchDown:
        case fault::DcnFaultKind::SwitchUp: {
            if (ev.id >= topo.switchCount())
                fatal("DcnFaultSchedule: event targets switch ", ev.id,
                      " but the topology has ", topo.switchCount());
            const bool up = ev.kind == fault::DcnFaultKind::SwitchUp;
            topo.setSwitchAlive(ev.id, up);
            label = up ? "switch up" : "switch down";
            break;
        }
        case fault::DcnFaultKind::LinkDown:
        case fault::DcnFaultKind::LinkUp: {
            if (ev.id >= static_cast<int>(topo.links().size()))
                fatal("DcnFaultSchedule: event targets trunk ", ev.id,
                      " but the topology has ", topo.links().size());
            const bool up = ev.kind == fault::DcnFaultKind::LinkUp;
            topo.setLinkAlive(ev.id, up);
            label = up ? "trunk up" : "trunk down";
            break;
        }
        }
        if (cfg.trace)
            cfg.trace->instant(
                label, "fault", cfg.trace_tid,
                static_cast<std::int64_t>(ev.at_s * 1e6),
                {obs::TraceArg::num(
                    "id", static_cast<std::int64_t>(ev.id))});
        obs::recordEvent(obs::EventKind::FaultInjection, ev.id,
                         static_cast<std::int64_t>(ev.at_s * 1e6),
                         label);
    };

    // --- event loop ----------------------------------------------
    // Liveness marks: one heartbeat + epoch event every kEpochBatch
    // event batches (never per flow), so the watchdog can tell a
    // slow 100k-flow cell from a hung one. Purely passive.
    constexpr std::uint64_t kEpochBatch = 2048;
    std::uint64_t batches = 0;
    while (i_arr < flows.size() || !active.empty()) {
        if (++batches % kEpochBatch == 0) {
            obs::heartbeat();
            obs::recordEvent(obs::EventKind::SimEpoch,
                             static_cast<std::int64_t>(i_arr),
                             static_cast<std::int64_t>(active.size()),
                             "flow-sim");
        }
        const double t_arr =
            i_arr < flows.size() ? flows[i_arr].arrival_s : kInf;
        const double t_fault = i_fault < sorted_faults.size()
                                   ? sorted_faults[i_fault].at_s
                                   : kInf;
        double t_comp = kInf;
        for (const auto &f : active)
            if (f.rate > 0.0)
                t_comp = std::min(t_comp, now + f.remaining / f.rate);
        double t_next = std::min({t_arr, t_fault, t_comp});
        if (t_next == kInf)
            panic("flow simulator stalled at t=", now, " with ",
                  active.size(),
                  " active flows, zero rates, and no pending events");
        t_next = std::max(t_next, now);

        const double dt = t_next - now;
        if (dt > 0.0) {
            for (auto &f : active)
                f.remaining -= f.rate * dt;
            if (telemetry)
                // Attribute each flow's bytes to its trunks, split at
                // window boundaries so per-window link totals are
                // exact.
                for (const auto &f : active) {
                    if (f.rate <= 0.0)
                        continue;
                    double a = now;
                    while (a < t_next) {
                        FlowTelemetry::Window &w = windowAt(a);
                        double b = std::min(
                            t_next,
                            (std::floor(a / telemetry->window_s) +
                             1.0) *
                                telemetry->window_s);
                        // fp guard: a window boundary that fails to
                        // advance past `a` would loop forever.
                        if (b <= a)
                            b = t_next;
                        for (int l : f.links)
                            w.link_bytes[static_cast<std::size_t>(
                                l)] += f.rate * (b - a);
                        a = b;
                    }
                }
        }
        now = t_next;

        bool membership_changed = false;

        // 1. completions
        for (std::size_t i = 0; i < active.size();) {
            if (active[i].remaining <= kEpsBytes) {
                completeFlow(active[i]);
                active[i] = std::move(active.back());
                active.pop_back();
                membership_changed = true;
            } else {
                ++i;
            }
        }

        // 2. faults (before arrivals: a flow arriving at the fault
        // instant routes on the post-fault fabric)
        bool topo_changed = false;
        while (i_fault < sorted_faults.size() &&
               sorted_faults[i_fault].at_s <= now) {
            applyFault(sorted_faults[i_fault++]);
            ++fault_events;
            c_fault.inc();
            topo_changed = true;
        }
        if (topo_changed) {
            topo.rebuildRoutes();
            for (std::size_t i = 0; i < active.size();) {
                auto &f = active[i];
                bool broken = false;
                for (int sw : f.switches)
                    if (!topo.switchAlive(sw)) {
                        broken = true;
                        break;
                    }
                if (!broken)
                    for (int l : f.links)
                        if (!topo.linkAlive(l)) {
                            broken = true;
                            break;
                        }
                if (!broken) {
                    ++i;
                    continue;
                }
                membership_changed = true;
                if (topo.route(f.src, f.dst, f.id, &path)) {
                    // Keep the start-time latency estimate; only the
                    // bandwidth path changes.
                    buildResources(path, f);
                    ++rerouted;
                    c_rerouted.inc();
                    ++i;
                } else {
                    ++failed;
                    c_failed.inc();
                    if (telemetry)
                        ++windowAt(now).failed;
                    recordFlow(f.id, f.src, f.dst, f.bytes,
                               now - f.arrival_s, true);
                    active[i] = std::move(active.back());
                    active.pop_back();
                }
            }
        }

        // 3. arrivals
        while (i_arr < flows.size() &&
               flows[i_arr].arrival_s <= now) {
            const auto &a = flows[i_arr++];
            ++started;
            c_started.inc();
            if (telemetry)
                ++windowAt(now).started;
            if (a.src_host == a.dst_host) {
                // Host loopback: the bytes never cross a NIC, trunk
                // or switch — complete at line rate, zero hops,
                // outside the waterfill.
                const double xfer = a.bytes / line_bytes;
                hops_acc.add(0.0);
                recordCompletion((now - a.arrival_s) + xfer, xfer,
                                 a.bytes, now + xfer);
                recordFlow(a.id, a.src_host, a.dst_host, a.bytes,
                           (now - a.arrival_s) + xfer, false);
                continue;
            }
            if (!topo.route(a.src_host, a.dst_host, a.id, &path)) {
                ++failed;
                c_failed.inc();
                if (telemetry)
                    ++windowAt(now).failed;
                recordFlow(a.id, a.src_host, a.dst_host, a.bytes,
                           0.0, true);
                continue;
            }
            ActiveFlow f;
            f.id = a.id;
            f.arrival_s = a.arrival_s;
            f.bytes = f.remaining = a.bytes;
            f.src = a.src_host;
            f.dst = a.dst_host;
            buildResources(path, f);
            f.latency_s = pathLatency(f.switches);
            hops_acc.add(static_cast<double>(f.switches.size()));
            if (a.bytes <= kEpsBytes) {
                // Zero-byte flow (a bare header): pays the calibrated
                // path latency but transfers nothing — complete now
                // rather than burdening the waterfill with a
                // zero-remaining flow.
                recordCompletion((now - a.arrival_s) + f.latency_s,
                                 idealSeconds(a.bytes,
                                              f.switches.size()),
                                 a.bytes, now);
                recordFlow(a.id, a.src_host, a.dst_host, a.bytes,
                           (now - a.arrival_s) + f.latency_s, false);
                continue;
            }
            active.push_back(std::move(f));
            membership_changed = true;
        }

        if (membership_changed)
            recompute();
        if (telemetry)
            // Gauge semantics: the last event batch of each window
            // leaves its in-flight count behind.
            windowAt(now).in_flight_end =
                static_cast<std::int64_t>(active.size());
        verifyFlowConservation(started, completed, failed,
                               static_cast<std::int64_t>(active.size()));
    }
    verifyFlowConservation(started, completed, failed, 0);

    // --- results -------------------------------------------------
    FlowSimResult result;
    result.started = started;
    result.completed = completed;
    result.failed = failed;
    result.rerouted = rerouted;
    result.fault_events = fault_events;
    result.duration_s = last_completion;
    result.completed_bytes = completed_bytes;
    if (last_completion > 0.0)
        result.throughput_gbps =
            completed_bytes * 8.0 / last_completion / 1e9;
    result.fct_avg_s = fct_acc.mean();
    result.fct_max_s = fct_acc.max();
    result.slowdown_avg = slow_acc.mean();
    result.avg_hops = hops_acc.mean();
    if (!fct_q.empty()) {
        result.fct_p50_s = fct_q.quantile(0.50);
        result.fct_p99_s = fct_q.quantile(0.99);
        result.fct_p999_s = fct_q.quantile(0.999);
        result.slowdown_p50 = slow_q.quantile(0.50);
        result.slowdown_p99 = slow_q.quantile(0.99);
        result.slowdown_p999 = slow_q.quantile(0.999);
    }
    result.telemetry = telemetry;

    if (cfg.trace && telemetry) {
        // Counter samples at window-close instants: Perfetto renders
        // the in-flight gauge and the busiest-link utilization as
        // time series on their own allocated track.
        const int tel_tid =
            cfg.trace->allocateTrack(cfg.trace_label + "/telemetry");
        for (std::size_t w = 0; w < telemetry->windows.size(); ++w) {
            const auto ts = static_cast<std::int64_t>(
                (static_cast<double>(w) + 1.0) *
                telemetry->window_s * 1e6);
            cfg.trace->counter(
                "in_flight", "flow", tel_tid, ts,
                static_cast<double>(
                    telemetry->windows[w].in_flight_end));
            double max_util = 0.0;
            for (std::size_t l = 0;
                 l < telemetry->windows[w].link_bytes.size(); ++l)
                max_util =
                    std::max(max_util, telemetry->linkUtilization(w, l));
            cfg.trace->counter("max_link_utilization", "flow",
                               tel_tid, ts, max_util);
        }
    }

    if (cfg.trace) {
        cfg.trace->complete(
            cfg.trace_label, "flow", cfg.trace_tid, 0,
            static_cast<std::int64_t>(result.duration_s * 1e6),
            {obs::TraceArg::num("flows",
                                static_cast<std::int64_t>(started)),
             obs::TraceArg::num("completed",
                                static_cast<std::int64_t>(completed)),
             obs::TraceArg::num("failed",
                                static_cast<std::int64_t>(failed))});
    }
    return result;
}

} // namespace wss::flow
