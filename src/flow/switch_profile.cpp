#include "flow/switch_profile.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "exec/sweep_runner.hpp"
#include "sim/traffic.hpp"
#include "topology/clos.hpp"
#include "util/artifact.hpp"
#include "util/logging.hpp"

namespace wss::flow {

namespace {

/// Interpolate @p points (plus the implicit (0, zero_load) anchor)
/// at @p offered, reading the latency via @p get.
template <typename Get>
double
interpolate(const std::vector<ProfilePoint> &points, double zero_load,
            double offered, Get get)
{
    if (points.empty() || offered <= 0.0)
        return zero_load;
    double x0 = 0.0;
    double y0 = zero_load;
    for (const auto &point : points) {
        if (offered <= point.offered) {
            const double span = point.offered - x0;
            if (span <= 0.0)
                return get(point);
            const double t = (offered - x0) / span;
            return y0 + t * (get(point) - y0);
        }
        x0 = point.offered;
        y0 = get(point);
    }
    // Beyond the last calibrated point: clamp. The saturation derate
    // keeps flow-level loads from straying far past it anyway.
    return y0;
}

// ---------------------------------------------------------------
// A minimal recursive-descent JSON reader — just enough for the
// documents writeJson() emits (objects, arrays, numbers, strings,
// booleans). No dependencies; fatal() on malformed input.
// ---------------------------------------------------------------

class JsonReader
{
  public:
    explicit JsonReader(std::string text) : text_(std::move(text)) {}

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fatal("SwitchProfile JSON: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("SwitchProfile JSON: expected '", std::string(1, c),
                  "' at offset ", pos_, ", got '",
                  std::string(1, text_[pos_]), "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fatal("SwitchProfile JSON: dangling escape");
                const char e = text_[pos_++];
                switch (e) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                default:
                    fatal("SwitchProfile JSON: unsupported escape \\",
                          std::string(1, e));
                }
            }
            out += c;
        }
        if (pos_ >= text_.size())
            fatal("SwitchProfile JSON: unterminated string");
        ++pos_; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        skipSpace();
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            fatal("SwitchProfile JSON: expected a number at offset ",
                  pos_);
        const std::string token = text_.substr(pos_, end - pos_);
        pos_ = end;
        try {
            return std::stod(token);
        } catch (const std::exception &) {
            fatal("SwitchProfile JSON: bad number '", token, "'");
        }
    }

    /// Skip one value of any type (for unknown keys: forward
    /// compatibility with future profile fields).
    void
    skipValue()
    {
        const char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++pos_;
            if (consume('}'))
                return;
            do {
                parseString();
                expect(':');
                skipValue();
            } while (consume(','));
            expect('}');
        } else if (c == '[') {
            ++pos_;
            if (consume(']'))
                return;
            do {
                skipValue();
            } while (consume(','));
            expect(']');
        } else if (c == 't' || c == 'f' || c == 'n') {
            while (pos_ < text_.size() &&
                   std::isalpha(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        } else {
            parseNumber();
        }
    }

  private:
    std::string text_;
    std::size_t pos_ = 0;
};

/// Full-precision double that round-trips bit-exactly.
std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

double
SwitchProfile::latencyCycles(double offered) const
{
    return interpolate(points, zero_load_latency, offered,
                       [](const ProfilePoint &p) { return p.avg_latency; });
}

double
SwitchProfile::p99LatencyCycles(double offered) const
{
    return interpolate(points, zero_load_latency, offered,
                       [](const ProfilePoint &p) { return p.p99_latency; });
}

void
SwitchProfile::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"wss_switch_profile\": 1,\n";
    os << "  \"name\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"radix\": " << radix << ",\n";
    os << "  \"line_rate_gbps\": " << jsonNumber(line_rate_gbps)
       << ",\n";
    os << "  \"cycle_seconds\": " << jsonNumber(cycle_seconds) << ",\n";
    os << "  \"power_watts\": " << jsonNumber(power_watts) << ",\n";
    os << "  \"zero_load_latency\": " << jsonNumber(zero_load_latency)
       << ",\n";
    os << "  \"saturation\": " << jsonNumber(saturation) << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        os << (i ? ",\n             " : "\n             ");
        os << "{\"offered\": " << jsonNumber(points[i].offered)
           << ", \"avg_latency\": " << jsonNumber(points[i].avg_latency)
           << ", \"p99_latency\": " << jsonNumber(points[i].p99_latency)
           << "}";
    }
    os << (points.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
}

void
SwitchProfile::writeJsonFile(const std::string &path) const
{
    util::writeArtifactFile(path, "SwitchProfile",
                            [this](std::ostream &os) { writeJson(os); });
}

SwitchProfile
SwitchProfile::fromJson(std::istream &is)
{
    std::ostringstream buffer;
    buffer << is.rdbuf();
    JsonReader reader(buffer.str());

    SwitchProfile profile;
    bool versioned = false;

    reader.expect('{');
    if (!reader.consume('}')) {
        do {
            const std::string key = reader.parseString();
            reader.expect(':');
            if (key == "wss_switch_profile") {
                versioned = true;
                const double v = reader.parseNumber();
                if (v != 1.0)
                    fatal("SwitchProfile JSON: unsupported version ", v);
            } else if (key == "name") {
                profile.name = reader.parseString();
            } else if (key == "radix") {
                profile.radix =
                    static_cast<std::int64_t>(reader.parseNumber());
            } else if (key == "line_rate_gbps") {
                profile.line_rate_gbps = reader.parseNumber();
            } else if (key == "cycle_seconds") {
                profile.cycle_seconds = reader.parseNumber();
            } else if (key == "power_watts") {
                profile.power_watts = reader.parseNumber();
            } else if (key == "zero_load_latency") {
                profile.zero_load_latency = reader.parseNumber();
            } else if (key == "saturation") {
                profile.saturation = reader.parseNumber();
            } else if (key == "points") {
                reader.expect('[');
                if (!reader.consume(']')) {
                    do {
                        ProfilePoint point;
                        reader.expect('{');
                        do {
                            const std::string field =
                                reader.parseString();
                            reader.expect(':');
                            if (field == "offered")
                                point.offered = reader.parseNumber();
                            else if (field == "avg_latency")
                                point.avg_latency = reader.parseNumber();
                            else if (field == "p99_latency")
                                point.p99_latency = reader.parseNumber();
                            else
                                reader.skipValue();
                        } while (reader.consume(','));
                        reader.expect('}');
                        profile.points.push_back(point);
                    } while (reader.consume(','));
                    reader.expect(']');
                }
            } else {
                reader.skipValue();
            }
        } while (reader.consume(','));
        reader.expect('}');
    }

    if (!versioned)
        fatal("SwitchProfile JSON: missing wss_switch_profile marker "
              "(is this really a profile file?)");
    if (profile.radix <= 0 || profile.line_rate_gbps <= 0.0)
        fatal("SwitchProfile JSON: radix and line_rate_gbps must be "
              "positive");
    if (profile.saturation <= 0.0 || profile.cycle_seconds <= 0.0)
        fatal("SwitchProfile JSON: saturation and cycle_seconds must "
              "be positive");
    for (std::size_t i = 1; i < profile.points.size(); ++i)
        if (profile.points[i].offered <= profile.points[i - 1].offered)
            fatal("SwitchProfile JSON: points must ascend in offered "
                  "load");
    return profile;
}

SwitchProfile
SwitchProfile::loadJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("SwitchProfile: cannot open '", path,
              "' (run the calibration first, e.g. `wss dcn "
              "--calibrate --profiles <dir>`)");
    return fromJson(is);
}

SwitchProfile
calibrateSwitchProfile(const CalibrationSpec &spec,
                       exec::ThreadPool *pool,
                       obs::TraceEventSink *trace,
                       obs::Profiler *profiler)
{
    obs::ScopedPhase calibrate_phase(profiler, "calibrate");
    if (spec.ports <= 0)
        fatal("calibrateSwitchProfile: need a positive port count");
    if (spec.ssc.radix <= 0)
        fatal("calibrateSwitchProfile: SSC radix must be positive");

    const auto topo = topology::buildFoldedClos(
        {spec.ports, spec.ssc, /*leaf_split=*/1});

    exec::SweepJob job;
    job.make_network = [topo, net = spec.net_spec](std::uint64_t seed) {
        return std::make_unique<sim::Network>(topo, net, seed);
    };
    const auto ports = static_cast<int>(spec.ports);
    job.make_workload = [ports, packet = spec.packet_flits](
                            double rate, std::uint64_t) {
        return std::make_unique<sim::SyntheticWorkload>(
            sim::uniformTraffic(ports), rate, packet);
    };
    job.rates = spec.rates.empty()
                    ? sim::geometricRates(0.05, 0.95, 7)
                    : spec.rates;
    job.cfg = spec.sim_cfg;
    job.repetitions = 1;

    const auto output =
        exec::SweepRunner(std::move(job)).run(pool, trace, profiler);
    const sim::SweepResult &sweep = output.combined;

    SwitchProfile profile;
    profile.name = spec.name.empty()
                       ? topo.name()
                       : spec.name;
    profile.radix = spec.ports;
    profile.line_rate_gbps = spec.ssc.line_rate;
    profile.cycle_seconds = spec.cycle_seconds;
    profile.power_watts = spec.power_watts;
    profile.zero_load_latency = sweep.zero_load_latency;
    profile.saturation = sweep.saturation_throughput;
    for (const auto &point : sweep.points)
        if (point.stable)
            profile.points.push_back(
                {point.offered, point.avg_latency, point.p99_latency});
    if (profile.points.empty()) {
        warn("calibrateSwitchProfile: every sweep point of '",
             profile.name,
             "' is saturated; the latency curve degenerates to the "
             "zero-load anchor");
    }
    if (profile.saturation <= 0.0)
        profile.saturation = 1.0;
    return profile;
}

} // namespace wss::flow
