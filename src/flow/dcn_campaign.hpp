/**
 * @file
 * Design-comparison campaigns at datacenter-network scale — the
 * flow-level generalisation of the paper's Table IX.
 *
 * A DcnCampaign sweeps (switch design x workload x load): for each
 * cell it builds the smallest fabric of that design covering the
 * host count, generates a flow workload, runs the max-min flow
 * simulator, and records both the structural comparison the paper
 * makes in closed form (switch count, tiers, cables, worst-case
 * hops, power) and what only a simulator can produce — FCT and
 * slowdown tails under contention, incast and faults.
 *
 * Execution rides the PR-1 engine: one exec::Campaign task per cell
 * writing a preallocated slot, all randomness derived per cell from
 * (seed, cell index) — so the CSV artifact is byte-identical at any
 * --jobs value.
 */

#ifndef WSS_FLOW_DCN_CAMPAIGN_HPP
#define WSS_FLOW_DCN_CAMPAIGN_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "fault/flow_faults.hpp"
#include "flow/dcn_topology.hpp"
#include "flow/flow_sim.hpp"
#include "flow/switch_profile.hpp"
#include "flow/workload.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"

namespace wss::flow {

/// The sweep grid of one DCN campaign.
struct DcnCampaignConfig
{
    /// Calibrated switch designs to compare (>= 1; the canonical
    /// campaign holds one waferscale and one conventional profile).
    std::vector<SwitchProfile> designs;
    /// Fabric shape built from each design.
    DcnKind kind = DcnKind::FatTree;
    /// Hosts every fabric must cover.
    std::int64_t hosts = 1024;
    /// Flow workloads to sweep (each spec's load field is overridden
    /// by the swept load).
    std::vector<DcnWorkloadSpec> workloads;
    /// Offered loads (fraction of aggregate host bandwidth).
    std::vector<double> loads = {0.3, 0.7};
    /// Flows per cell.
    std::int64_t flows_per_cell = 100000;
    /// Field-failure model: when node_field_failure > 0, each cell
    /// samples switch kills over its workload's arrival window and
    /// replays them mid-run (reroutes included).
    fault::FaultModel fault_model{};
    /// Base seed; per-cell seeds derive from (seed, cell index).
    std::uint64_t seed = 1;
};

/// One (design, workload, load) cell.
struct DcnCellResult
{
    std::string design;
    std::string topology;
    std::string workload;
    double load = 0.0;
    std::int64_t hosts = 0;
    int switches = 0;
    int tiers = 0;
    std::int64_t cables = 0;
    int worst_hops = 0;
    /// switches x profile power.
    double power_kw = 0.0;
    FlowSimResult sim;
    /// Serial compute cost (excluded from the CSV so artifacts stay
    /// bit-identical across thread counts).
    double seconds = 0.0;
};

/// What a whole campaign produced.
struct DcnResult
{
    std::vector<DcnCellResult> cells;
    double wall_seconds = 0.0;
    int threads = 1;

    /// `# key=value` provenance lines plus one quoted row per cell
    /// (Table::printCsv). No timing — byte-identical for a given
    /// (config, seed) at any --jobs value.
    void writeCsv(std::ostream &os) const;
    /// Full-precision nested summary, including timing.
    void writeJson(std::ostream &os) const;

    /// Flush-checked file counterparts (fatal on I/O error).
    void writeCsvFile(const std::string &path) const;
    void writeJsonFile(const std::string &path) const;
};

/**
 * Runs the (design x workload x load) grid.
 */
class DcnCampaign
{
  public:
    explicit DcnCampaign(DcnCampaignConfig config);

    /// @p pool nullptr runs serially. @p trace records one span per
    /// cell on per-worker tracks. @p profiler accumulates one
    /// "campaign/<cell>" phase per cell (merged across workers after
    /// the barrier).
    DcnResult run(exec::ThreadPool *pool = nullptr,
                  obs::TraceEventSink *trace = nullptr,
                  obs::Profiler *profiler = nullptr) const;

    const DcnCampaignConfig &config() const { return config_; }

  private:
    DcnCellResult runCell(std::size_t di, std::size_t wi,
                          std::size_t li,
                          std::uint64_t cell_seed) const;

    DcnCampaignConfig config_;
};

} // namespace wss::flow

#endif // WSS_FLOW_DCN_CAMPAIGN_HPP
