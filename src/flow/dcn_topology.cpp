#include "flow/dcn_topology.hpp"

#include <algorithm>
#include <deque>
#include <string>

#include "util/logging.hpp"

namespace wss::flow {

namespace {

/// splitmix64-style mix; the ECMP hash must be stable across
/// platforms, so no std::hash.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

std::string_view
toString(DcnKind kind)
{
    switch (kind) {
    case DcnKind::FatTree: return "fat-tree";
    case DcnKind::Dragonfly: return "dragonfly";
    }
    return "?";
}

int
DcnTopology::addSwitch(int hosts_attached)
{
    const int id = static_cast<int>(alive_.size());
    alive_.push_back(1);
    adj_.emplace_back();
    for (int h = 0; h < hosts_attached; ++h)
        host_edge_.push_back(id);
    return id;
}

void
DcnTopology::addTrunk(int a, int b, int trunks)
{
    const int id = static_cast<int>(links_.size());
    links_.push_back({a, b, trunks, trunks * line_rate_gbps_});
    link_alive_.push_back(1);
    adj_[static_cast<std::size_t>(a)].push_back({b, id});
    adj_[static_cast<std::size_t>(b)].push_back({a, id});
}

void
DcnTopology::finalize()
{
    edge_index_.assign(alive_.size(), -1);
    for (int edge : host_edge_) {
        if (edge_index_[static_cast<std::size_t>(edge)] < 0) {
            edge_index_[static_cast<std::size_t>(edge)] =
                static_cast<int>(edge_switches_.size());
            edge_switches_.push_back(edge);
        }
    }
    rebuildRoutes();
}

DcnTopology
DcnTopology::buildFatTree(std::int64_t hosts, int radix,
                          double line_rate_gbps)
{
    if (radix < 4 || radix % 2 != 0)
        fatal("DcnTopology: fat-tree switch radix must be even and "
              ">= 4, got ", radix);
    if (hosts < 1)
        fatal("DcnTopology: need at least one host, got ", hosts);
    if (line_rate_gbps <= 0.0)
        fatal("DcnTopology: line rate must be positive");

    DcnTopology topo;
    topo.kind_ = DcnKind::FatTree;
    topo.radix_ = radix;
    topo.line_rate_gbps_ = line_rate_gbps;

    const std::int64_t k = radix;
    const std::int64_t half = k / 2;

    if (hosts <= k) {
        // One switch covers everything — the waferscale endgame.
        topo.tiers_ = 1;
        topo.addSwitch(static_cast<int>(hosts));
    } else if (hosts <= k * k / 2) {
        // 2-tier leaf-spine: leaves give half their ports to hosts,
        // half to spines; spines sized so no spine exceeds k ports.
        topo.tiers_ = 2;
        const std::int64_t leaves = ceilDiv(hosts, half);
        const std::int64_t spines = ceilDiv(leaves, 2);
        std::int64_t remaining = hosts;
        std::vector<int> leaf_ids;
        for (std::int64_t l = 0; l < leaves; ++l) {
            const std::int64_t attach = std::min(remaining, half);
            leaf_ids.push_back(
                topo.addSwitch(static_cast<int>(attach)));
            remaining -= attach;
        }
        std::vector<int> spine_ids;
        for (std::int64_t s = 0; s < spines; ++s)
            spine_ids.push_back(topo.addSwitch(0));
        // Each leaf spreads its `half` uplinks across every spine.
        const std::int64_t base = half / spines;
        const std::int64_t rem = half % spines;
        for (int leaf : leaf_ids)
            for (std::int64_t s = 0; s < spines; ++s) {
                const std::int64_t trunks = base + (s < rem ? 1 : 0);
                if (trunks > 0)
                    topo.addTrunk(leaf,
                                  spine_ids[static_cast<std::size_t>(s)],
                                  static_cast<int>(trunks));
            }
    } else if (hosts <= k * k * k / 4) {
        // 3-tier pod fat-tree: up to k pods of k/2 leaves + k/2
        // aggs, (k/2)^2 cores; agg j of every pod reaches core
        // column j.
        topo.tiers_ = 3;
        const std::int64_t pod_hosts = half * half;
        const std::int64_t pods = ceilDiv(hosts, pod_hosts);
        std::vector<int> core_ids;
        for (std::int64_t c = 0; c < half * half; ++c)
            core_ids.push_back(topo.addSwitch(0));
        std::int64_t remaining = hosts;
        for (std::int64_t p = 0; p < pods; ++p) {
            const std::int64_t pod_fill = std::min(remaining, pod_hosts);
            const std::int64_t pod_leaves = ceilDiv(pod_fill, half);
            std::vector<int> agg_ids;
            for (std::int64_t j = 0; j < half; ++j)
                agg_ids.push_back(topo.addSwitch(0));
            std::int64_t pod_left = pod_fill;
            for (std::int64_t l = 0; l < pod_leaves; ++l) {
                const std::int64_t attach = std::min(pod_left, half);
                const int leaf =
                    topo.addSwitch(static_cast<int>(attach));
                pod_left -= attach;
                for (int agg : agg_ids)
                    topo.addTrunk(leaf, agg, 1);
            }
            for (std::int64_t j = 0; j < half; ++j)
                for (std::int64_t c = 0; c < half; ++c)
                    topo.addTrunk(
                        agg_ids[static_cast<std::size_t>(j)],
                        core_ids[static_cast<std::size_t>(j * half + c)],
                        1);
            remaining -= pod_fill;
        }
    } else {
        fatal("DcnTopology: ", hosts, " hosts exceed a radix-", radix,
              " 3-tier fat-tree's capacity of ", k * k * k / 4);
    }

    topo.name_ = "fat-tree-" + std::to_string(topo.tiers_) + "t-k" +
                 std::to_string(radix);
    topo.finalize();
    return topo;
}

DcnTopology
DcnTopology::buildDragonfly(std::int64_t hosts, int radix,
                            double line_rate_gbps)
{
    if (radix < 4 || radix % 4 != 0)
        fatal("DcnTopology: dragonfly switch radix must be a "
              "positive multiple of 4, got ", radix);
    if (hosts < 1)
        fatal("DcnTopology: need at least one host, got ", hosts);
    if (line_rate_gbps <= 0.0)
        fatal("DcnTopology: line rate must be positive");

    DcnTopology topo;
    topo.kind_ = DcnKind::Dragonfly;
    topo.tiers_ = 1;
    topo.radix_ = radix;
    topo.line_rate_gbps_ = line_rate_gbps;

    // Canonical balanced split: p hosts, a-1 local and h global
    // trunks per switch.
    const std::int64_t p = radix / 4;
    const std::int64_t a = radix / 2;
    const std::int64_t h = radix / 4;
    const std::int64_t group_hosts = p * a;
    const std::int64_t groups = std::max<std::int64_t>(
        2, ceilDiv(hosts, group_hosts));
    const std::int64_t budget = a * h; // global ports per group
    if (groups - 1 > budget)
        fatal("DcnTopology: ", groups, " dragonfly groups exceed the "
              "global-link budget of radix-", radix,
              " switches (max ", budget + 1, " groups)");
    const std::int64_t pair_width = budget / (groups - 1);

    std::int64_t remaining = hosts;
    for (std::int64_t g = 0; g < groups; ++g)
        for (std::int64_t s = 0; s < a; ++s) {
            const std::int64_t attach = std::min(remaining, p);
            topo.addSwitch(static_cast<int>(attach));
            remaining -= attach;
        }

    const auto switch_of = [a](std::int64_t group, std::int64_t local) {
        return static_cast<int>(group * a + local);
    };
    // Local all-to-all inside each group.
    for (std::int64_t g = 0; g < groups; ++g)
        for (std::int64_t i = 0; i < a; ++i)
            for (std::int64_t j = i + 1; j < a; ++j)
                topo.addTrunk(switch_of(g, i), switch_of(g, j), 1);
    // Global trunks: every group pair gets pair_width links, each
    // consuming the next free global port of its group.
    std::vector<std::int64_t> used(static_cast<std::size_t>(groups), 0);
    for (std::int64_t i = 0; i < groups; ++i)
        for (std::int64_t j = i + 1; j < groups; ++j)
            for (std::int64_t c = 0; c < pair_width; ++c) {
                const std::int64_t pa =
                    used[static_cast<std::size_t>(i)]++;
                const std::int64_t pb =
                    used[static_cast<std::size_t>(j)]++;
                topo.addTrunk(switch_of(i, pa / h),
                              switch_of(j, pb / h), 1);
            }

    topo.name_ = "dragonfly-k" + std::to_string(radix) + "-g" +
                 std::to_string(groups);
    topo.finalize();
    return topo;
}

std::int64_t
DcnTopology::cableCount() const
{
    std::int64_t cables = hostCount();
    for (const auto &link : links_)
        cables += link.trunks;
    return cables;
}

void
DcnTopology::setSwitchAlive(int id, bool up)
{
    alive_[static_cast<std::size_t>(id)] = up ? 1 : 0;
    routes_dirty_ = true;
}

void
DcnTopology::setLinkAlive(int id, bool up)
{
    link_alive_[static_cast<std::size_t>(id)] = up ? 1 : 0;
    routes_dirty_ = true;
}

void
DcnTopology::rebuildRoutes()
{
    const std::size_t n = alive_.size();
    dist_.assign(edge_switches_.size(), {});
    std::deque<int> frontier;
    for (std::size_t e = 0; e < edge_switches_.size(); ++e) {
        auto &dist = dist_[e];
        dist.assign(n, -1);
        const int root = edge_switches_[e];
        if (!alive_[static_cast<std::size_t>(root)])
            continue;
        dist[static_cast<std::size_t>(root)] = 0;
        frontier.clear();
        frontier.push_back(root);
        while (!frontier.empty()) {
            const int cur = frontier.front();
            frontier.pop_front();
            const int d = dist[static_cast<std::size_t>(cur)];
            for (const auto &[nbr, link] :
                 adj_[static_cast<std::size_t>(cur)]) {
                if (!link_alive_[static_cast<std::size_t>(link)] ||
                    !alive_[static_cast<std::size_t>(nbr)])
                    continue;
                if (dist[static_cast<std::size_t>(nbr)] >= 0)
                    continue;
                dist[static_cast<std::size_t>(nbr)] = d + 1;
                frontier.push_back(nbr);
            }
        }
    }
    routes_dirty_ = false;
}

int
DcnTopology::worstCaseHops() const
{
    if (routes_dirty_)
        panic("DcnTopology::worstCaseHops: routes are stale; call "
              "rebuildRoutes() after fault changes");
    int worst = 0;
    for (std::size_t e = 0; e < edge_switches_.size(); ++e) {
        const auto &dist = dist_[e];
        for (int other : edge_switches_) {
            const int d = dist[static_cast<std::size_t>(other)];
            worst = std::max(worst, d);
        }
    }
    return worst + 1; // trunk hops -> switches traversed
}

bool
DcnTopology::route(std::int64_t src_host, std::int64_t dst_host,
                   std::uint64_t flow_id, DcnPath *out) const
{
    if (routes_dirty_)
        panic("DcnTopology::route: routes are stale; call "
              "rebuildRoutes() after fault changes");
    out->switches.clear();
    out->directed_links.clear();

    const int src_edge = edgeOf(src_host);
    const int dst_edge = edgeOf(dst_host);
    if (!switchAlive(src_edge) || !switchAlive(dst_edge))
        return false;

    const auto &dist =
        dist_[static_cast<std::size_t>(edge_index_[static_cast<std::size_t>(
            dst_edge)])];
    if (dist[static_cast<std::size_t>(src_edge)] < 0)
        return false;

    int cur = src_edge;
    out->switches.push_back(cur);
    std::uint64_t state = mix64(flow_id ^ 0xd1b54a32d192ed03ull);
    while (cur != dst_edge) {
        const int d = dist[static_cast<std::size_t>(cur)];
        // Gather the live minimal next hops in adjacency order so
        // the candidate set — and thus the hash pick — is stable.
        int candidates = 0;
        for (const auto &[nbr, link] :
             adj_[static_cast<std::size_t>(cur)])
            if (link_alive_[static_cast<std::size_t>(link)] &&
                alive_[static_cast<std::size_t>(nbr)] &&
                dist[static_cast<std::size_t>(nbr)] == d - 1)
                ++candidates;
        if (candidates == 0)
            return false; // stale-free tables make this unreachable
        state = mix64(state + static_cast<std::uint64_t>(cur));
        int pick = static_cast<int>(
            state % static_cast<std::uint64_t>(candidates));
        for (const auto &[nbr, link] :
             adj_[static_cast<std::size_t>(cur)]) {
            if (!(link_alive_[static_cast<std::size_t>(link)] &&
                  alive_[static_cast<std::size_t>(nbr)] &&
                  dist[static_cast<std::size_t>(nbr)] == d - 1))
                continue;
            if (pick-- == 0) {
                const int dir = links_[static_cast<std::size_t>(link)]
                                        .a == cur
                                    ? 0
                                    : 1;
                out->directed_links.push_back(link << 1 | dir);
                out->switches.push_back(nbr);
                cur = nbr;
                break;
            }
        }
    }
    return true;
}

} // namespace wss::flow
