/**
 * @file
 * Discrete-event max-min fair-share flow simulator over a
 * DcnTopology of calibrated switches.
 *
 * The classic flow-level abstraction: flows (host-to-host byte
 * transfers) share link bandwidth by max-min fairness, recomputed at
 * every arrival, completion and fault event (progressive waterfill).
 * What sets this engine apart from a generic flow simulator is that
 * every bandwidth and latency figure is *calibrated*: link
 * capacities are derated by the switch fabric's measured saturation
 * throughput, and each flow pays a per-switch latency read off the
 * cycle-accurate load–latency curve (SwitchProfile) at the switch's
 * offered load when the flow starts. The DCN-scale FCT/slowdown
 * tails therefore inherit the single-switch fidelity of Figs. 21-24.
 *
 * The engine is single-threaded and strictly deterministic: same
 * topology, profile, flow list and fault schedule — same statistics,
 * bit for bit. Parallel campaigns run independent cells, never
 * concurrent events.
 */

#ifndef WSS_FLOW_FLOW_SIM_HPP
#define WSS_FLOW_FLOW_SIM_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "fault/flow_faults.hpp"
#include "flow/dcn_topology.hpp"
#include "flow/switch_profile.hpp"
#include "flow/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"

namespace wss::flow {

/// One terminal flow outcome, appended to
/// FlowSimConfig::flow_records when that is set. coll:: turns these
/// into per-rank Gantt spans.
struct FlowRecord
{
    std::uint64_t id = 0;
    std::int64_t src = 0;
    std::int64_t dst = 0;
    double bytes = 0.0;
    /// Completion time (transfer + calibrated latency) for completed
    /// flows; time spent in flight before failing otherwise.
    double fct_s = 0.0;
    bool failed = false;
};

/// Optional instrumentation of one simulateFlows() run.
struct FlowSimConfig
{
    /// Counters (flow.started/completed/failed/rerouted,
    /// flow.fault_events) and the flow.slowdown histogram land here
    /// when set. Not thread-safe: one registry per concurrent run.
    obs::MetricsRegistry *metrics = nullptr;
    /// One complete span for the run plus an instant event per
    /// applied fault (simulated milliseconds as timestamps).
    obs::TraceEventSink *trace = nullptr;
    /// Span/track label in the trace.
    std::string trace_label = "flow-sim";
    /// Trace track id to record on.
    int trace_tid = 0;
    /// Scoped phase timers ("flow-sim" with "waterfill" nested) when
    /// set. Like metrics: nullptr costs one predicted branch.
    obs::Profiler *profiler = nullptr;
    /// > 0 collects windowed time-resolved telemetry
    /// (FlowSimResult::telemetry) with this window length in
    /// simulated seconds; 0 (default) disables it. Purely additive:
    /// the behavioural results are bit-identical either way.
    double telemetry_window_s = 0.0;
    /// When set, every terminal flow outcome (completed or failed)
    /// appends one FlowRecord here, in event order.
    std::vector<FlowRecord> *flow_records = nullptr;
};

/**
 * Windowed time series of one simulateFlows() run: where congestion
 * lives, and when. Per window: flow start/completion/failure counts,
 * the in-flight gauge at window close, delivered bytes, and bytes
 * carried per trunk (so per-link utilization over time falls out).
 * Integer totals reconcile exactly with the run's counters
 * (ctest-asserted) — every event lands in exactly one window.
 */
struct FlowTelemetry
{
    /// Window length (simulated seconds).
    double window_s = 0.0;
    /// Derated capacity (bytes/s) per trunk, for utilization.
    std::vector<double> link_capacity_bps;
    struct Window
    {
        std::int64_t started = 0;
        std::int64_t completed = 0;
        std::int64_t failed = 0;
        /// Active flows when the window's last event batch ended.
        std::int64_t in_flight_end = 0;
        /// Bytes delivered by flows completing in this window.
        double completed_bytes = 0.0;
        /// Bytes carried per trunk during this window.
        std::vector<double> link_bytes;
    };
    /// Window k covers [k*window_s, (k+1)*window_s).
    std::vector<Window> windows;

    std::int64_t totalStarted() const;
    std::int64_t totalCompleted() const;
    std::int64_t totalFailed() const;

    /// Mean utilization of @p link during window @p w (0 when the
    /// trunk has no capacity).
    double linkUtilization(std::size_t w, std::size_t link) const;

    /// Long-format CSV, same shape as SimObservation::dumpCsv:
    /// `record,window,scope,metric,value` with record ∈ {capacity,
    /// window, link, total}. Link rows are emitted only for trunks
    /// that carried bytes in that window.
    void dumpCsv(std::ostream &os) const;
    /// Flush-checked file counterpart (util::writeArtifactFile).
    void dumpCsvFile(const std::string &path) const;
};

/// What one flow-level run produced.
struct FlowSimResult
{
    std::int64_t started = 0;
    std::int64_t completed = 0;
    /// Flows dropped because no live path existed (at arrival or
    /// after a fault).
    std::int64_t failed = 0;
    /// Flows whose path was rebuilt around a fault mid-transfer.
    std::int64_t rerouted = 0;
    /// Fault transitions applied during the run.
    std::int64_t fault_events = 0;
    /// Simulated seconds until the last flow finished.
    double duration_s = 0.0;
    /// Bytes delivered by completed flows.
    double completed_bytes = 0.0;
    /// Goodput of completed flows over the run (Gbps).
    double throughput_gbps = 0.0;
    /// Flow completion time (seconds): transfer time plus the
    /// calibrated per-switch latency terms.
    double fct_avg_s = 0.0;
    /// Largest FCT of any completed flow — the completion time of
    /// the whole batch when all flows are released together (how
    /// coll:: prices one bulk-synchronous collective step).
    double fct_max_s = 0.0;
    double fct_p50_s = 0.0;
    double fct_p99_s = 0.0;
    double fct_p999_s = 0.0;
    /// FCT normalised by the ideal lone-flow time on the same path.
    double slowdown_avg = 0.0;
    double slowdown_p50 = 0.0;
    double slowdown_p99 = 0.0;
    double slowdown_p999 = 0.0;
    /// Mean switches traversed per started flow.
    double avg_hops = 0.0;
    /// Windowed time series; null unless
    /// FlowSimConfig::telemetry_window_s > 0.
    std::shared_ptr<FlowTelemetry> telemetry;
};

/**
 * The flow-conservation invariant: every started flow is accounted
 * for as completed, failed, or still in flight. panic() (abort) on
 * violation — a broken engine must never quietly produce statistics.
 * The engine checks this after every event batch and again at drain
 * (where in_flight must be 0).
 */
void verifyFlowConservation(std::int64_t started, std::int64_t completed,
                            std::int64_t failed, std::int64_t in_flight);

/**
 * Run @p flows (sorted by arrival time, as generateFlows produces)
 * over @p topo, each switch modeled by @p profile. @p faults is
 * applied in time order: a dead switch or trunk triggers an ECMP
 * table rebuild, in-flight flows crossing it are rerouted onto
 * surviving paths (or counted failed when none exists), and flows
 * arriving while no path exists fail immediately.
 *
 * Degenerate flows are handled explicitly: a same-host (src == dst)
 * flow is host loopback — it completes in bytes/line_rate without
 * touching NICs, trunks or switch latency (0 hops); a zero-byte flow
 * completes at arrival paying only the calibrated path latency.
 * Neither ever enters the fair-share waterfill, so they cannot stall
 * the engine or steal bandwidth. Negative byte counts are a fatal
 * input error.
 *
 * @p topo is mutated (fault state, routing tables); build a fresh
 * topology per run.
 */
FlowSimResult simulateFlows(DcnTopology &topo,
                            const SwitchProfile &profile,
                            const std::vector<FlowArrival> &flows,
                            const fault::DcnFaultSchedule &faults = {},
                            const FlowSimConfig &cfg = {});

} // namespace wss::flow

#endif // WSS_FLOW_FLOW_SIM_HPP
