/**
 * @file
 * `wss` — command-line front end to the waferscale-switch models.
 *
 * Subcommands:
 *   solve       size the maximum-radix switch for a design point
 *   sim         latency-vs-load sweep on a waferscale Clos fabric
 *   sweep       parallel multi-pattern sweep campaign (--jobs N)
 *   trace       generate (and save) a synthetic mini-app message trace
 *   yield       manufacturing-yield analysis for a chiplet assembly
 *   resilience  Monte-Carlo defect/spare/degraded-mode campaign
 *   dcn         flow-level multi-switch DCN comparison (waferscale
 *               vs conventional), calibrated from the fabric sim
 *   coll        collective-communication comparison (allreduce /
 *               all-to-all schedules priced on waferscale vs
 *               conventional, cross-checked against alpha-beta)
 *   report      render one run's provenance manifest + telemetry
 *               artifacts as Markdown (+ JSON) with health checks
 *   plan        full system plan (power delivery / cooling / enclosure)
 *
 * Run `wss <subcommand> --help` for the flags of each.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "coll/campaign.hpp"
#include "coll/plan.hpp"
#include "core/radix_solver.hpp"
#include "exec/campaign.hpp"
#include "fault/resilience.hpp"
#include "flow/dcn_campaign.hpp"
#include "obs/crash_dump.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/run_manifest.hpp"
#include "obs/trace_event.hpp"
#include "obs/watchdog.hpp"
#include "power/link_power.hpp"
#include "power/switch_power.hpp"
#include "sim/load_sweep.hpp"
#include "sysarch/cooling_loop.hpp"
#include "sysarch/enclosure.hpp"
#include "sysarch/power_delivery.hpp"
#include "tech/yield.hpp"
#include "topology/clos.hpp"
#include "trace/generators.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/seed.hpp"
#include "util/table.hpp"

namespace {

using namespace wss;

/// Minimal --key value / --flag parser.
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                fatal("unexpected argument '", key,
                      "' (flags look like --key value)");
            key = key.substr(2);
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                values_[key] = argv[++i];
            else
                values_[key] = "";
        }
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

    std::string
    str(const std::string &key, const std::string &fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    double
    num(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stod(it->second);
    }

    long long
    integer(const std::string &key, long long fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoll(it->second);
    }

    /// Every flag as given, for provenance manifests.
    const std::map<std::string, std::string> &
    all() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

/// Artifact bookkeeping for --manifest-out: each file a subcommand
/// writes is noted (path, kind) so the manifest inventory covers
/// everything the run produced.
struct ArtifactLog
{
    std::vector<std::pair<std::string, std::string>> entries;

    void
    note(const std::string &path, const std::string &kind)
    {
        entries.emplace_back(path, kind);
    }
};

/// True for flags that only say *where* outputs go: they are not
/// part of a run's identity (the same run pointed at a different
/// directory must hash identically).
bool
isOutputPathFlag(const std::string &key)
{
    return key == "csv" || key == "json" || key == "out" ||
           key == "profiles" || key == "crash-dump" ||
           (key.size() > 4 &&
            key.compare(key.size() - 4, 4, "-out") == 0);
}

/// Write the provenance manifest of one subcommand invocation:
/// every non-output CLI flag verbatim (arg.<key>), the resolved
/// seed and worker count, the artifact inventory, and the
/// profiler's phase timings.
void
writeManifest(const Args &args, const std::string &tool,
              std::uint64_t seed, int jobs,
              const ArtifactLog &artifacts,
              const obs::Profiler &profiler)
{
    const std::string path = args.str("manifest-out", "");
    if (path.empty())
        fatal(tool, ": --manifest-out needs a file path");
    obs::RunManifest manifest(tool);
    for (const auto &[key, value] : args.all())
        if (!isOutputPathFlag(key))
            manifest.setConfig("arg." + key, value);
    manifest.setSeed(seed);
    manifest.setJobs(jobs);
    for (const auto &[artifact_path, kind] : artifacts.entries)
        manifest.addArtifact(artifact_path, kind);
    manifest.setProfile(profiler);
    manifest.writeJsonFile(path);
    std::ostringstream identity;
    identity << std::hex << manifest.identityHash();
    std::cout << "manifest written to " << path << " (identity 0x"
              << identity.str() << ", " << artifacts.entries.size()
              << " artifacts)\n";
}

/// Shared tail of every profiled subcommand: print the self-time
/// table with --profile, and lay the aggregate out as spans on its
/// own trace track when tracing.
void
finishProfile(const Args &args, obs::Profiler &profiler,
              obs::TraceEventSink *trace)
{
    if (args.has("profile"))
        profiler.writeSummary(std::cout);
    if (trace && !profiler.phases().empty())
        profiler.addToTrace(*trace, trace->allocateTrack("profile"));
}

/**
 * RAII wiring for the observability flags shared by every
 * campaign-shaped subcommand (sim / sweep / resilience / dcn / coll):
 *
 *   --flight-recorder [N]  per-thread flight-recorder rings
 *                          (N events/thread, default 4096)
 *   --crash-dump c.json    install crash handlers: panic(), fatal()
 *                          and fatal signals write a c.json
 *                          post-mortem (`wss report --crash c.json`)
 *   --watchdog SECONDS     monitor thread aborts — with a diagnostic
 *                          dump — when any active worker goes
 *                          SECONDS without a heartbeat
 *   --progress             live status line on stderr (jobs
 *                          done/total, ETA, per-worker design point)
 *
 * --crash-dump, --watchdog and --progress all imply the flight
 * recorder: their dumps and status lines read its rings. All of it
 * is passive — results are bit-identical with the recorder on or off
 * (asserted by test_obs).
 */
class ObsSession
{
  public:
    ObsSession(const Args &args, const std::string &tool,
               std::uint64_t seed, int jobs)
    {
        const bool wanted =
            args.has("flight-recorder") || args.has("crash-dump") ||
            args.has("watchdog") || args.has("progress");
        if (!wanted)
            return;
        std::size_t capacity = 4096;
        if (!args.str("flight-recorder", "").empty())
            capacity = static_cast<std::size_t>(util::parsePositiveInt(
                args.str("flight-recorder", ""), "--flight-recorder"));
        obs::FlightRecorder::enable(capacity);
        obs::FlightRecorder::attachCurrentThread("main");

        if (args.has("crash-dump")) {
            const std::string path = args.str("crash-dump", "");
            if (path.empty())
                fatal(tool, ": --crash-dump needs a file path");
            // The dump carries the *configuration* identity (flags +
            // seed + jobs): a crashed run never wrote its manifest,
            // so this hash is what links the post-mortem back to the
            // design point that died.
            obs::RunManifest identity(tool);
            for (const auto &[key, value] : args.all())
                if (!isOutputPathFlag(key))
                    identity.setConfig("arg." + key, value);
            identity.setSeed(seed);
            identity.setJobs(jobs);
            obs::CrashDump::install(path);
            obs::CrashDump::setTool(tool);
            obs::CrashDump::setIdentity(identity.identityHash());
        }

        double timeout = 0.0;
        if (args.has("watchdog")) {
            const std::string value = args.str("watchdog", "");
            if (value.empty())
                fatal(tool,
                      ": --watchdog needs a stall timeout in seconds");
            timeout = std::stod(value);
            if (timeout <= 0.0)
                fatal(tool, ": --watchdog timeout must be positive");
        }
        const bool progress = args.has("progress");
        if (timeout > 0.0 || progress) {
            obs::Watchdog::enableHeartbeats();
            // Main mostly waits on workers; register it idle so a
            // long fan-out phase never reads as a main-thread stall.
            obs::Watchdog::registerCurrentThread("main");
            obs::Watchdog::markThreadIdle();
            obs::Watchdog::start(timeout, progress);
            monitoring_ = true;
        }
    }

    ~ObsSession()
    {
        if (monitoring_)
            obs::Watchdog::stop();
    }

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

  private:
    bool monitoring_ = false;
};

tech::WsiTechnology
parseWsi(const std::string &name)
{
    if (name == "siif")
        return tech::siIf();
    if (name == "siif2x")
        return tech::siIf2x();
    if (name == "infosow")
        return tech::infoSow();
    fatal("unknown WSI technology '", name,
          "' (siif | siif2x | infosow)");
}

tech::ExternalIoTech
parseExternalIo(const std::string &name)
{
    if (name == "serdes")
        return tech::serdes();
    if (name == "optical")
        return tech::opticalIo();
    if (name == "area")
        return tech::areaIo();
    fatal("unknown external I/O '", name, "' (serdes | optical | area)");
}

tech::CoolingSolution
parseCooling(const std::string &name)
{
    if (name == "air")
        return tech::airCooling();
    if (name == "water")
        return tech::waterCooling();
    if (name == "multiphase")
        return tech::multiphaseCooling();
    if (name == "none")
        return tech::unlimitedCooling();
    fatal("unknown cooling '", name,
          "' (air | water | multiphase | none)");
}

core::TopologyKind
parseTopology(const std::string &name)
{
    if (name == "clos")
        return core::TopologyKind::Clos;
    if (name == "mesh")
        return core::TopologyKind::Mesh;
    if (name == "butterfly")
        return core::TopologyKind::Butterfly;
    if (name == "fb")
        return core::TopologyKind::FlattenedButterfly;
    if (name == "dragonfly")
        return core::TopologyKind::Dragonfly;
    fatal("unknown topology '", name,
          "' (clos | mesh | butterfly | fb | dragonfly)");
}

core::DesignSpec
specFromArgs(const Args &args)
{
    core::DesignSpec spec;
    spec.substrate_side = args.num("substrate", 300.0);
    spec.wsi = parseWsi(args.str("wsi", "siif2x"));
    spec.external_io = parseExternalIo(args.str("ext", "optical"));
    const int config = static_cast<int>(args.integer("ssc-config", 1));
    spec.ssc = power::tomahawk5(config);
    const int deradix = static_cast<int>(args.integer("deradix", 1));
    if (deradix > 1)
        spec.ssc = topology::deradixedSsc(spec.ssc, deradix);
    spec.cooling = parseCooling(args.str("cooling", "none"));
    spec.leaf_split = static_cast<int>(args.integer("hetero", 1));
    spec.topology = parseTopology(args.str("topology", "clos"));
    spec.area_only = args.has("ideal");
    spec.mapping_restarts =
        static_cast<int>(args.integer("restarts", 4));
    spec.seed = static_cast<std::uint64_t>(args.integer("seed", 1));
    return spec;
}

int
cmdSolve(const Args &args)
{
    const core::DesignSpec spec = specFromArgs(args);
    const auto result = core::RadixSolver(spec).solveMaxPorts();
    const auto &best = result.best;

    Table table("wss solve — " + std::string(core::toString(
                    spec.topology)) + " on " +
                    Table::num(spec.substrate_side, 0) + " mm",
                {"metric", "value"});
    table.addRow({"max ports", Table::num(best.ports)});
    table.addRow({"SSC chiplets", Table::num(best.ssc_chiplets)});
    table.addRow({"I/O chiplets", Table::num(best.io_chiplets)});
    table.addRow({"silicon area (mm^2)",
                  Table::num(best.silicon_area, 0)});
    table.addRow({"hottest edge / capacity (Gbps)",
                  Table::num(best.max_edge_load, 0) + " / " +
                      Table::num(best.edge_capacity, 0)});
    table.addRow({"external demand / capacity (Tbps)",
                  Table::num(best.external_demand / 1000.0, 1) + " / " +
                      Table::num(best.external_capacity / 1000.0, 1)});
    table.addRow({"power (kW)",
                  Table::num(best.power.total() / 1000.0, 2)});
    table.addRow({"power density (W/mm^2)",
                  Table::num(best.power_density, 3)});
    if (result.blocking) {
        table.addRow({"next candidate blocked by",
                      std::string(core::toString(
                          result.blocking->violated))});
    }
    table.print(std::cout);
    return 0;
}

/// Fabric parameters shared by `wss sim` and `wss sweep`.
sim::NetworkSpec
fabricSpecFromArgs(const Args &args)
{
    sim::NetworkSpec spec;
    spec.vcs = static_cast<int>(args.integer("vcs", 16));
    spec.buffer_per_port =
        static_cast<int>(args.integer("buffer", 64));
    spec.rc_delay_ingress =
        static_cast<int>(args.integer("rc-ingress", 2));
    spec.rc_delay_transit =
        static_cast<int>(args.integer("rc-transit", 2));
    spec.pipeline_delay =
        static_cast<int>(args.integer("pipeline", 9));
    spec.terminal_link_latency =
        static_cast<int>(args.integer("io-delay", 8));
    spec.internal_link_latency =
        static_cast<int>(args.integer("hop-delay", 1));
    spec.adaptive_routing = args.has("adaptive");
    return spec;
}

/// Phase configuration shared by `wss sim` and `wss sweep`.
sim::SimConfig
simConfigFromArgs(const Args &args)
{
    sim::SimConfig cfg;
    cfg.warmup = args.integer("warmup", 1000);
    cfg.measure = args.integer("measure", 4000);
    cfg.drain_limit = args.integer("drain", 20000);
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed", 1));
    return cfg;
}

/// Sweep rates: --geometric gives min-rate..max-rate geometric
/// spacing, otherwise linear in (0, max-rate].
std::vector<double>
ratesFromArgs(const Args &args)
{
    const int points = static_cast<int>(args.integer("points", 9));
    const double max_rate = args.num("max-rate", 0.9);
    if (args.has("geometric"))
        return sim::geometricRates(args.num("min-rate", 0.05),
                                   max_rate, points);
    return sim::linearRates(max_rate, points);
}

int
cmdSim(const Args &args)
{
    const auto ports = args.integer("ports", 512);
    const std::string pattern = args.str("pattern", "uniform");
    const int packet =
        static_cast<int>(args.integer("packet-flits", 1));
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});

    const sim::NetworkSpec spec = fabricSpecFromArgs(args);
    const sim::SimConfig cfg = simConfigFromArgs(args);
    ObsSession obs_session(args, "wss sim", cfg.seed, 1);
    obs::Profiler profiler;
    ArtifactLog artifacts;

    const auto make_network = [&] {
        return std::make_unique<sim::Network>(topo, spec, cfg.seed);
    };
    const auto make_workload = [&](double rate) {
        return std::make_unique<sim::SyntheticWorkload>(
            sim::makeTraffic(pattern, static_cast<int>(ports)), rate,
            packet);
    };

    const auto sweep = [&] {
        obs::ScopedPhase phase(&profiler, "sweep");
        return sim::sweepLoad(make_network, make_workload,
                              ratesFromArgs(args), cfg);
    }();

    Table table("wss sim — " + pattern + " on " + Table::num(ports) +
                    " ports",
                {"offered", "accepted", "avg latency", "p99", "stable"});
    for (const auto &point : sweep.points) {
        table.addRow({Table::num(point.offered, 2),
                      Table::num(point.accepted, 3),
                      Table::num(point.avg_latency, 1),
                      Table::num(point.p99_latency, 1),
                      point.stable ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "zero-load " << Table::num(sweep.zero_load_latency, 1)
              << " cycles, saturation "
              << Table::num(sweep.saturation_throughput, 3)
              << " flits/terminal/cycle\n";

    // Observed run: one extra simulation with per-router/per-link
    // telemetry on, dumped as long-format CSV.
    if (args.has("stats-out")) {
        const std::string path = args.str("stats-out", "");
        if (path.empty())
            fatal("sim: --stats-out needs a file path");
        sim::SimConfig obs_cfg = cfg;
        obs_cfg.observe = true;
        obs_cfg.observe_sample_every = args.integer("obs-sample", 0);
        const double rate =
            args.num("rate", args.num("max-rate", 0.9));

        sim::SimResult full;
        {
            obs::ScopedPhase phase(&profiler, "observe");
            sim::runLoadPoint(make_network, make_workload, rate,
                              obs_cfg, &full);
        }
        full.observation->dumpCsvFile(path);
        artifacts.note(path, "sim-observation");

        const std::uint64_t counted =
            full.observation->totalCounter("flits_delivered");
        if (counted !=
            static_cast<std::uint64_t>(full.flits_delivered))
            panic("sim: per-router flits_delivered counters (",
                  counted, ") disagree with SimResult (",
                  full.flits_delivered, ")");
        std::cout << "stats written to " << path << " (rate "
                  << Table::num(rate, 3) << ", "
                  << full.flits_delivered
                  << " flits delivered, counters reconcile)\n";
    }
    finishProfile(args, profiler, nullptr);
    if (args.has("manifest-out"))
        writeManifest(args, "wss sim", cfg.seed, 1, artifacts,
                      profiler);
    return 0;
}

int
cmdSweep(const Args &args)
{
    const auto ports = args.integer("ports", 512);
    const int packet =
        static_cast<int>(args.integer("packet-flits", 1));
    const int repetitions =
        static_cast<int>(args.integer("reps", 1));
    const int jobs = static_cast<int>(
        args.integer("jobs", exec::ThreadPool::defaultThreads()));
    const auto topo =
        topology::buildFoldedClos({ports, power::tomahawk5(1), 1});

    const sim::NetworkSpec spec = fabricSpecFromArgs(args);
    const sim::SimConfig cfg = simConfigFromArgs(args);
    const auto rates = ratesFromArgs(args);

    // One campaign job per traffic pattern (comma-separated list).
    std::vector<std::string> patterns;
    {
        std::istringstream list(args.str("patterns", "uniform"));
        std::string name;
        while (std::getline(list, name, ','))
            if (!name.empty())
                patterns.push_back(name);
    }
    if (patterns.empty())
        fatal("sweep: --patterns needs at least one pattern name");

    exec::Campaign campaign;
    for (const auto &pattern : patterns) {
        exec::SweepJob job;
        job.make_network = [&topo, spec](std::uint64_t seed) {
            return std::make_unique<sim::Network>(topo, spec, seed);
        };
        job.make_workload = [pattern, ports,
                             packet](double rate, std::uint64_t) {
            return std::make_unique<sim::SyntheticWorkload>(
                sim::makeTraffic(pattern, static_cast<int>(ports)),
                rate, packet);
        };
        job.rates = rates;
        job.cfg = cfg;
        job.repetitions = repetitions;
        campaign.addSweep(pattern, std::move(job));
    }

    exec::ThreadPool pool(jobs);
    ObsSession obs_session(args, "wss sweep", cfg.seed, jobs);
    obs::Profiler profiler;
    ArtifactLog artifacts;
    obs::TraceEventSink trace;
    const bool tracing = args.has("trace-out");
    if (tracing)
        trace.setProcessName("wss sweep");
    const auto result =
        campaign.run(&pool, tracing ? &trace : nullptr, &profiler);

    for (const auto &job : result.jobs) {
        const auto &sweep = job.sweep.combined;
        Table table("wss sweep — " + job.name + " on " +
                        Table::num(ports) + " ports (" +
                        Table::num(static_cast<double>(
                                       job.sweep.reps.size()),
                                   0) +
                        " reps)",
                    {"offered", "accepted", "avg latency", "p99",
                     "stable"});
        for (const auto &point : sweep.points) {
            table.addRow({Table::num(point.offered, 3),
                          Table::num(point.accepted, 3),
                          Table::num(point.avg_latency, 1),
                          Table::num(point.p99_latency, 1),
                          point.stable ? "yes" : "no"});
        }
        table.print(std::cout);
        std::cout << "zero-load "
                  << Table::num(sweep.zero_load_latency, 1)
                  << " cycles, saturation "
                  << Table::num(sweep.saturation_throughput, 3)
                  << " flits/terminal/cycle, "
                  << Table::num(job.seconds, 2) << " cpu-s over "
                  << job.cells << " runs\n\n";
    }
    std::cout << "campaign: " << result.jobs.size() << " jobs on "
              << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n";

    if (args.has("csv")) {
        const std::string path = args.str("csv", "");
        result.writeCsvFile(path);
        artifacts.note(path, "campaign-csv");
        std::cout << "CSV written to " << path << "\n";
    }
    if (args.has("json")) {
        const std::string path = args.str("json", "");
        result.writeJsonFile(path);
        artifacts.note(path, "campaign-json");
        std::cout << "JSON written to " << path << "\n";
    }
    finishProfile(args, profiler, tracing ? &trace : nullptr);
    if (tracing) {
        const std::string path = args.str("trace-out", "");
        if (path.empty())
            fatal("sweep: --trace-out needs a file path");
        trace.writeFile(path);
        artifacts.note(path, "trace");
        std::cout << "trace written to " << path << " ("
                  << trace.size()
                  << " events; open in Perfetto / chrome://tracing)\n";
    }
    if (args.has("manifest-out"))
        writeManifest(args, "wss sweep", cfg.seed, jobs, artifacts,
                      profiler);
    return 0;
}

int
cmdTrace(const Args &args)
{
    const std::string app = args.str("app", "lulesh");
    const int ranks = static_cast<int>(args.integer("ranks", 512));
    trace::GeneratorConfig gen;
    gen.iterations = static_cast<int>(args.integer("iterations", 8));
    gen.iteration_period = args.integer("period", 600);
    gen.base_message_flits =
        static_cast<int>(args.integer("message-flits", 8));
    gen.seed = static_cast<std::uint64_t>(args.integer("seed", 1));

    trace::MessageTrace trace = trace::generateMiniApp(app, ranks, gen);
    const int duplicate =
        static_cast<int>(args.integer("duplicate", 1));
    if (duplicate > 1)
        trace = trace::duplicateTrace(trace, duplicate);

    std::cout << "trace '" << trace.name << "': " << trace.ranks
              << " ranks, " << trace.events.size() << " messages, "
              << trace.totalFlits() << " flits over " << trace.span()
              << " cycles (avg load "
              << Table::num(trace.averageLoad(), 4)
              << " flits/rank/cycle)\n";
    if (args.has("out")) {
        const std::string path = args.str("out", "");
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '", path, "' for writing");
        trace::saveTrace(trace, os);
        std::cout << "written to " << path << "\n";
    }
    return 0;
}

int
cmdYield(const Args &args)
{
    tech::YieldModel model;
    model.defect_density_cm2 = args.num("defects", 0.1);
    model.bond_yield = args.num("bond-yield", 0.999);

    const int sockets = static_cast<int>(args.integer("chiplets", 96));
    const double area = args.num("die-area", 800.0);

    Table table("wss yield", {"metric", "value"});
    table.addRow({"die yield (" + Table::num(area, 0) + " mm^2)",
                  Table::num(tech::dieYield(area, model), 4)});
    table.addRow({"KGD cost factor",
                  Table::num(tech::kgdCostFactor(area, model), 3)});
    for (int spares : {0, 1, 2, 4}) {
        table.addRow(
            {"system yield, " + Table::num(spares) + " spares",
             Table::num(tech::chipletSystemYield(sockets, spares, model),
                        5)});
    }
    table.addRow({"monolithic wafer (99% redundancy)",
                  Table::num(tech::monolithicWaferYield(
                                 args.num("substrate", 300.0), 0.99,
                                 model),
                             5)});
    table.print(std::cout);
    return 0;
}

/// Comma-separated "--key a,b,c" list; fatal when empty.
std::vector<std::string>
listFromArgs(const Args &args, const std::string &key,
             const std::string &fallback)
{
    std::vector<std::string> items;
    std::istringstream list(args.str(key, fallback));
    std::string item;
    while (std::getline(list, item, ','))
        if (!item.empty())
            items.push_back(item);
    if (items.empty())
        fatal("--", key, " needs at least one value");
    return items;
}

int
cmdResilience(const Args &args)
{
    if (args.has("help")) {
        std::cout <<
            "usage: wss resilience [--flags]\n"
            "\n"
            "Monte-Carlo resilience campaign: sample defect maps of a\n"
            "folded-Clos waferscale switch, repair with spare SSCs,\n"
            "classify connectivity, and (optionally) simulate the\n"
            "degraded fabric's saturation throughput.\n"
            "\n"
            "  --ports 256,512      switch radices to sweep\n"
            "  --densities 0.1,0.3  die defect densities (per cm^2)\n"
            "  --spares 0,1,2       spare-SSC counts\n"
            "  --ssc-radix 64       sub-switch chiplet radix\n"
            "  --line-rate 200      SSC line rate (Gbps)\n"
            "  --samples 500        defect maps per cell\n"
            "  --sim-samples 0      maps also simulated packet-level\n"
            "  --sim-rate 0.9       offered load for those runs\n"
            "  --packet-flits 4     flits per packet\n"
            "  --bond-yield 0.999   per-bond success probability\n"
            "  --test-escape 0.05   defective dies missed by KGD test\n"
            "  --node-fail 0.002    SSC field-failure probability\n"
            "  --link-fail 0.0005   link-unit field-failure probability\n"
            "  --jobs N             worker threads\n"
            "  --seed 1             base seed (same seed + config =>\n"
            "                       bit-identical CSV at any --jobs)\n"
            "  --csv out.csv --json out.json\n"
            "  --trace-out run.json Chrome-trace timeline of the\n"
            "                       campaign (Perfetto-loadable)\n"
            "  plus the sim flags of `wss sim` (--vcs, --warmup, ...)\n";
        return 0;
    }

    fault::ResilienceConfig cfg;
    cfg.radices.clear();
    for (const auto &item : listFromArgs(args, "ports", "256"))
        cfg.radices.push_back(std::stoll(item));
    cfg.defect_densities.clear();
    for (const auto &item : listFromArgs(args, "densities", "0.1,0.3"))
        cfg.defect_densities.push_back(std::stod(item));
    cfg.spare_counts.clear();
    for (const auto &item : listFromArgs(args, "spares", "0,1,2"))
        cfg.spare_counts.push_back(static_cast<int>(std::stoi(item)));

    cfg.ssc = power::scaledSsc(
        static_cast<int>(args.integer("ssc-radix", 64)),
        args.num("line-rate", 200.0));
    cfg.model.yield.bond_yield = args.num("bond-yield", 0.999);
    cfg.model.test_escape = args.num("test-escape", 0.05);
    cfg.model.node_field_failure = args.num("node-fail", 0.002);
    cfg.model.link_field_failure = args.num("link-fail", 0.0005);
    cfg.samples = static_cast<int>(args.integer("samples", 500));
    cfg.sim_samples =
        static_cast<int>(args.integer("sim-samples", 0));
    cfg.sim_rate = args.num("sim-rate", 0.9);
    cfg.sim_packet_size =
        static_cast<int>(args.integer("packet-flits", 4));
    cfg.net_spec = fabricSpecFromArgs(args);
    cfg.sim_cfg = simConfigFromArgs(args);
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed", 1));

    const int jobs = static_cast<int>(
        args.integer("jobs", exec::ThreadPool::defaultThreads()));
    exec::ThreadPool pool(jobs);
    ObsSession obs_session(args, "wss resilience", cfg.seed, jobs);
    obs::Profiler profiler;
    ArtifactLog artifacts;
    obs::TraceEventSink trace;
    const bool tracing = args.has("trace-out");
    if (tracing)
        trace.setProcessName("wss resilience");
    const fault::ResilienceResult result =
        fault::ResilienceCampaign(cfg).run(
            &pool, tracing ? &trace : nullptr, &profiler);

    Table table("wss resilience — " + Table::num(cfg.samples) +
                    " maps/cell, seed " + Table::num(cfg.seed),
                {"topology", "density", "spares", "survival",
                 "E[ports]", "bisection", "analytic", "sim thr"});
    for (const auto &cell : result.cells) {
        table.addRow(
            {cell.topology, Table::num(cell.defect_density, 2),
             Table::num(cell.spares), Table::num(cell.survival, 4),
             Table::num(cell.expected_usable_ports, 1),
             Table::num(cell.mean_bisection_fraction, 4),
             Table::num(cell.analytic_bond_yield, 4),
             cell.sim_samples > 0
                 ? Table::num(cell.mean_degraded_throughput, 3) +
                       "/" + Table::num(cell.healthy_throughput, 3)
                 : "-"});
    }
    table.print(std::cout);
    std::cout << "campaign: " << result.cells.size() << " cells on "
              << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n";

    if (args.has("csv")) {
        const std::string path = args.str("csv", "");
        result.writeCsvFile(path);
        artifacts.note(path, "resilience-csv");
        std::cout << "CSV written to " << path << "\n";
    }
    if (args.has("json")) {
        const std::string path = args.str("json", "");
        result.writeJsonFile(path);
        artifacts.note(path, "resilience-json");
        std::cout << "JSON written to " << path << "\n";
    }
    finishProfile(args, profiler, tracing ? &trace : nullptr);
    if (tracing) {
        const std::string path = args.str("trace-out", "");
        if (path.empty())
            fatal("resilience: --trace-out needs a file path");
        trace.writeFile(path);
        artifacts.note(path, "trace");
        std::cout << "trace written to " << path << " ("
                  << trace.size()
                  << " events; open in Perfetto / chrome://tracing)\n";
    }
    if (args.has("manifest-out"))
        writeManifest(args, "wss resilience", cfg.seed, jobs,
                      artifacts, profiler);
    return 0;
}

/// Round @p ports down to a positive multiple of ssc.radix / 2 (the
/// granularity buildFoldedClos accepts).
std::int64_t
alignPorts(std::int64_t ports, int ssc_radix)
{
    const std::int64_t half = ssc_radix / 2;
    return std::max<std::int64_t>(ports / half, 1) * half;
}

/// SSC + I/O power estimate (W) for a switch that did not come out
/// of the radix solver: core power of its 2-level-Clos chiplets plus
/// the substrate-crossing and external-port I/O.
double
estimateSwitchPower(const Args &args, std::int64_t ports,
                    const power::SscConfig &ssc)
{
    const auto wsi = parseWsi(args.str("wsi", "siif2x"));
    const auto ext = parseExternalIo(args.str("ext", "optical"));
    const auto chiplets =
        topology::closChipletCount(ports, ssc.radix);
    return static_cast<double>(chiplets) * ssc.core_power +
           power::internalIoPower(2.0 * static_cast<double>(ports) *
                                      ssc.line_rate,
                                  wsi) +
           power::externalIoPower(ports, ssc.line_rate, ext);
}

/// Acquire one design's profile: load `<dir>/<name>.json` when
/// --profiles names a directory holding it (and --calibrate is not
/// forcing a refresh), otherwise run the cycle-accurate calibration
/// sweep — and persist it back when a directory was given.
flow::SwitchProfile
dcnProfile(const Args &args, const std::string &name,
           std::int64_t ports, const power::SscConfig &ssc,
           double power_watts, exec::ThreadPool *pool,
           obs::TraceEventSink *trace, obs::Profiler *profiler)
{
    const std::string dir = args.str("profiles", "");
    const std::string path =
        dir.empty() ? "" : dir + "/" + name + ".json";
    if (!path.empty() && !args.has("calibrate")) {
        std::ifstream probe(path);
        if (probe.good()) {
            std::cout << "dcn: loading profile " << path << "\n";
            return flow::SwitchProfile::loadJsonFile(path);
        }
    }

    flow::CalibrationSpec spec;
    spec.name = name;
    // Calibrating the full waferscale fabric cycle-accurately is
    // expensive, so the sweep runs on a capped internal fabric of
    // the same chiplet; the latency-vs-load shape carries over and
    // the profile keeps the full DCN-level radix.
    spec.ports = alignPorts(
        std::min<std::int64_t>(ports, args.integer("cal-ports", 512)),
        ssc.radix);
    spec.ssc = ssc;
    spec.rates = sim::geometricRates(
        args.num("min-rate", 0.05), args.num("max-rate", 0.95),
        static_cast<int>(args.integer("points", 5)));
    spec.packet_flits =
        static_cast<int>(args.integer("packet-flits", 4));
    spec.net_spec = fabricSpecFromArgs(args);
    spec.sim_cfg = simConfigFromArgs(args);
    spec.power_watts = power_watts;

    std::cout << "dcn: calibrating " << name << " ("
              << spec.ports << "-port internal fabric, "
              << spec.rates.size() << " load points)\n";
    flow::SwitchProfile profile =
        flow::calibrateSwitchProfile(spec, pool, trace, profiler);
    profile.radix = ports;
    if (!path.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        profile.writeJsonFile(path);
        std::cout << "dcn: profile written to " << path << "\n";
    }
    return profile;
}

int
cmdDcn(const Args &args)
{
    if (args.has("help")) {
        std::cout <<
            "usage: wss dcn [--flags]\n"
            "\n"
            "Flow-level DCN comparison: calibrate per-switch load-\n"
            "latency profiles from the cycle-accurate fabric, build\n"
            "multi-switch networks from a waferscale design and a\n"
            "conventional baseline, and compare FCT/slowdown tails,\n"
            "hop counts and power under the same flow workloads.\n"
            "\n"
            "  --ws-ports 0         waferscale radix (0 = run the\n"
            "                       radix solver with the solve flags)\n"
            "  --conv-ports 64      conventional switch radix\n"
            "  --conv-ssc-radix 32  chiplet radix of the baseline\n"
            "  --cal-ports 512      cap on the calibration fabric\n"
            "  --calibrate          re-run calibration even when\n"
            "                       --profiles has cached JSON\n"
            "  --profiles dir       profile cache directory\n"
            "                       (ws-<R>.json / conv-<R>.json)\n"
            "  --dcn-topology fat-tree | dragonfly\n"
            "  --hosts 1024         endpoints each network must cover\n"
            "  --flows 100000       flows per cell\n"
            "  --workloads websearch,hadoop,fixed,incast\n"
            "  --loads 0.3,0.7      offered loads (fraction of host bw)\n"
            "  --node-fail 0        per-switch field-failure\n"
            "                       probability (kills mid-run)\n"
            "  --points 5           calibration load points\n"
            "  --jobs N             worker threads\n"
            "  --seed 1             base seed (same seed + config =>\n"
            "                       bit-identical CSV at any --jobs)\n"
            "  --csv out.csv --json out.json --trace-out run.json\n"
            "  --stats-out t.csv    re-run the first cell with windowed\n"
            "                       telemetry on and dump the per-link\n"
            "                       congestion timeline (long CSV)\n"
            "  --telemetry-window 0 window length in simulated seconds\n"
            "                       (0 = duration/24 of that cell)\n"
            "  --profile            print the phase self-time table\n"
            "  --manifest-out m.json  provenance manifest of this run\n"
            "  plus the solve flags (--substrate, --wsi, ...) and the\n"
            "  sim flags of `wss sim` (--vcs, --warmup, ...)\n";
        return 0;
    }

    const int jobs = static_cast<int>(
        args.integer("jobs", exec::ThreadPool::defaultThreads()));
    exec::ThreadPool pool(jobs);
    obs::Profiler profiler;
    ArtifactLog artifacts;
    obs::TraceEventSink trace;
    const bool tracing = args.has("trace-out");
    if (tracing)
        trace.setProcessName("wss dcn");
    obs::TraceEventSink *sink = tracing ? &trace : nullptr;
    ObsSession obs_session(
        args, "wss dcn",
        static_cast<std::uint64_t>(args.integer("seed", 1)), jobs);

    // Waferscale design: solver-sized unless --ws-ports pins it.
    core::DesignSpec dspec;
    dspec.substrate_side = args.num("substrate", 300.0);
    dspec.wsi = parseWsi(args.str("wsi", "siif2x"));
    dspec.external_io = parseExternalIo(args.str("ext", "optical"));
    dspec.ssc = power::tomahawk5(
        static_cast<int>(args.integer("ssc-config", 1)));
    const int deradix = static_cast<int>(args.integer("deradix", 1));
    if (deradix > 1)
        dspec.ssc = topology::deradixedSsc(dspec.ssc, deradix);
    dspec.cooling = parseCooling(args.str("cooling", "none"));
    dspec.topology = core::TopologyKind::Clos; // internal fabric
    dspec.mapping_restarts =
        static_cast<int>(args.integer("restarts", 2));
    dspec.seed = static_cast<std::uint64_t>(args.integer("seed", 1));

    std::int64_t ws_ports = args.integer("ws-ports", 0);
    double ws_power = 0.0;
    if (ws_ports <= 0) {
        const auto solved = core::RadixSolver(dspec).solveMaxPorts();
        if (solved.best.ports == 0)
            fatal("dcn: the radix solver found no feasible "
                  "waferscale design; pin one with --ws-ports");
        ws_ports = alignPorts(solved.best.ports, dspec.ssc.radix);
        ws_power = solved.best.power.total();
        std::cout << "dcn: solver sized the waferscale switch at "
                  << ws_ports << " ports, "
                  << Table::num(ws_power / 1000.0, 1) << " kW\n";
    } else {
        ws_ports = alignPorts(ws_ports, dspec.ssc.radix);
        ws_power = estimateSwitchPower(args, ws_ports, dspec.ssc);
    }

    // Conventional baseline: a small fixed-radix box built from the
    // same chiplet family at the same line rate.
    const std::int64_t conv_ports = args.integer("conv-ports", 64);
    const power::SscConfig conv_ssc = power::scaledSsc(
        static_cast<int>(args.integer("conv-ssc-radix", 32)),
        dspec.ssc.line_rate);
    const std::int64_t conv_aligned =
        alignPorts(conv_ports, conv_ssc.radix);
    const double conv_power =
        estimateSwitchPower(args, conv_aligned, conv_ssc);

    const flow::SwitchProfile ws_profile = dcnProfile(
        args, "ws-" + std::to_string(ws_ports), ws_ports, dspec.ssc,
        ws_power, &pool, sink, &profiler);
    const flow::SwitchProfile conv_profile = dcnProfile(
        args, "conv-" + std::to_string(conv_aligned), conv_aligned,
        conv_ssc, conv_power, &pool, sink, &profiler);

    flow::DcnCampaignConfig cfg;
    cfg.designs = {ws_profile, conv_profile};
    const std::string kind = args.str("dcn-topology", "fat-tree");
    if (kind == "fat-tree")
        cfg.kind = flow::DcnKind::FatTree;
    else if (kind == "dragonfly")
        cfg.kind = flow::DcnKind::Dragonfly;
    else
        fatal("dcn: unknown --dcn-topology '", kind,
              "' (fat-tree | dragonfly)");
    cfg.hosts = args.integer("hosts", 1024);
    cfg.workloads.clear();
    for (const auto &name :
         listFromArgs(args, "workloads", "websearch"))
        cfg.workloads.push_back(flow::workloadByName(name));
    cfg.loads.clear();
    for (const auto &item : listFromArgs(args, "loads", "0.3,0.7"))
        cfg.loads.push_back(std::stod(item));
    cfg.flows_per_cell = args.integer("flows", 100000);
    cfg.fault_model.node_field_failure = args.num("node-fail", 0.0);
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed", 1));

    const flow::DcnResult result =
        flow::DcnCampaign(cfg).run(&pool, sink, &profiler);

    Table table("wss dcn — " + Table::num(cfg.hosts) + " hosts, " +
                    Table::num(cfg.flows_per_cell) +
                    " flows/cell, seed " + Table::num(cfg.seed),
                {"design", "workload", "load", "switches", "hops",
                 "power kW", "fct p50 us", "fct p99 us", "slow p99",
                 "done/fail"});
    for (const auto &cell : result.cells) {
        table.addRow(
            {cell.design, cell.workload, Table::num(cell.load, 2),
             Table::num(cell.switches),
             Table::num(cell.worst_hops),
             Table::num(cell.power_kw, 1),
             Table::num(cell.sim.fct_p50_s * 1e6, 1),
             Table::num(cell.sim.fct_p99_s * 1e6, 1),
             Table::num(cell.sim.slowdown_p99, 2),
             Table::num(cell.sim.completed) + "/" +
                 Table::num(cell.sim.failed)});
    }
    table.print(std::cout);
    std::cout << "campaign: " << result.cells.size() << " cells on "
              << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n";

    if (args.has("csv")) {
        const std::string path = args.str("csv", "");
        result.writeCsvFile(path);
        artifacts.note(path, "dcn-csv");
        std::cout << "CSV written to " << path << "\n";
    }
    if (args.has("json")) {
        const std::string path = args.str("json", "");
        result.writeJsonFile(path);
        artifacts.note(path, "dcn-json");
        std::cout << "JSON written to " << path << "\n";
    }

    // Observed run: re-simulate the campaign's first cell (same
    // seed-derived flow list, fault-free) with windowed telemetry on
    // and dump the per-link congestion timeline.
    if (args.has("stats-out")) {
        const std::string path = args.str("stats-out", "");
        if (path.empty())
            fatal("dcn: --stats-out needs a file path");
        const flow::SwitchProfile &profile = cfg.designs.front();
        flow::DcnTopology topo =
            cfg.kind == flow::DcnKind::FatTree
                ? flow::DcnTopology::buildFatTree(
                      cfg.hosts, static_cast<int>(profile.radix),
                      profile.line_rate_gbps)
                : flow::DcnTopology::buildDragonfly(
                      cfg.hosts, static_cast<int>(profile.radix),
                      profile.line_rate_gbps);
        flow::DcnWorkloadSpec workload = cfg.workloads.front();
        workload.load = cfg.loads.front();
        workload.flow_count = cfg.flows_per_cell;
        const std::vector<flow::FlowArrival> flows =
            flow::generateFlows(workload, topo.hostCount(),
                                profile.line_rate_gbps,
                                deriveSeed(cfg.seed, 1));

        flow::FlowSimConfig obs_cfg;
        obs_cfg.profiler = &profiler;
        obs_cfg.trace = sink;
        obs_cfg.trace_label = "dcn-observed";
        // Default window: ~24 buckets over the campaign's own run of
        // this cell (its duration is already known).
        const double duration = result.cells.front().sim.duration_s;
        obs_cfg.telemetry_window_s =
            args.num("telemetry-window",
                     duration > 0.0 ? duration / 24.0 : 1e-6);
        if (obs_cfg.telemetry_window_s <= 0.0)
            fatal("dcn: --telemetry-window must be positive");

        const flow::FlowSimResult observed =
            flow::simulateFlows(topo, profile, flows, {}, obs_cfg);
        observed.telemetry->dumpCsvFile(path);
        artifacts.note(path, "flow-telemetry");
        std::cout << "telemetry written to " << path << " ("
                  << observed.telemetry->windows.size()
                  << " windows of "
                  << Table::num(obs_cfg.telemetry_window_s * 1e6, 3)
                  << " us, " << observed.started << " flows)\n";
    }

    finishProfile(args, profiler, sink);
    if (tracing) {
        const std::string path = args.str("trace-out", "");
        if (path.empty())
            fatal("dcn: --trace-out needs a file path");
        trace.writeFile(path);
        artifacts.note(path, "trace");
        std::cout << "trace written to " << path << " ("
                  << trace.size()
                  << " events; open in Perfetto / chrome://tracing)\n";
    }
    if (args.has("manifest-out"))
        writeManifest(args, "wss dcn", cfg.seed, jobs, artifacts,
                      profiler);
    return 0;
}

/// Collective name -> (collective, algorithm) for `wss coll`.
coll::CollSpec
parseCollSpec(const std::string &name)
{
    if (name == "ring")
        return {coll::Collective::AllReduce, coll::Algorithm::Ring};
    if (name == "rd" || name == "recursive-doubling")
        return {coll::Collective::AllReduce,
                coll::Algorithm::RecursiveDoubling};
    if (name == "hd" || name == "halving-doubling")
        return {coll::Collective::AllReduce,
                coll::Algorithm::HalvingDoubling};
    if (name == "tree")
        return {coll::Collective::AllReduce, coll::Algorithm::Tree};
    if (name == "alltoall" || name == "a2a")
        return {coll::Collective::AllToAll, coll::Algorithm::Pairwise};
    if (name == "reduce-scatter" || name == "rs")
        return {coll::Collective::ReduceScatter, coll::Algorithm::Ring};
    if (name == "all-gather" || name == "ag")
        return {coll::Collective::AllGather, coll::Algorithm::Ring};
    fatal("coll: unknown collective '", name,
          "' (ring | rd | hd | tree | alltoall | reduce-scatter | "
          "all-gather)");
}

/// Parse `--plan dp=8,tp=4,pp=2,ep=2` (every axis optional,
/// defaulting to 1, values strictly positive).
coll::PlanShape
parsePlanShape(const std::string &text)
{
    coll::PlanShape shape;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            fatal("coll: --plan entries look like dp=8, got '", item,
                  "'");
        const std::string axis = item.substr(0, eq);
        const int v = static_cast<int>(util::parsePositiveInt(
            item.substr(eq + 1), ("--plan " + axis).c_str(), 1 << 20));
        if (axis == "dp")
            shape.dp = v;
        else if (axis == "tp")
            shape.tp = v;
        else if (axis == "pp")
            shape.pp = v;
        else if (axis == "ep")
            shape.ep = v;
        else
            fatal("coll: unknown --plan axis '", axis,
                  "' (dp | tp | pp | ep)");
    }
    const std::string err = shape.validate();
    if (!err.empty())
        fatal("coll: invalid --plan: ", err);
    return shape;
}

int
cmdColl(const Args &args)
{
    if (args.has("help")) {
        std::cout <<
            "usage: wss coll [--flags]\n"
            "\n"
            "Collective-communication comparison: schedule allreduce /\n"
            "all-to-all algorithms as deterministic step-ordered\n"
            "message lists, execute them flow-level on a solver-sized\n"
            "waferscale switch network and a conventional baseline,\n"
            "and cross-check every cell against the closed-form\n"
            "alpha-beta cost model.\n"
            "\n"
            "  --ranks 64           participating ranks (one per host;\n"
            "                       hd/tree need a power of two)\n"
            "  --collectives ring,hd,tree,alltoall\n"
            "                       (also: rd, reduce-scatter,\n"
            "                       all-gather)\n"
            "  --payloads 1048576   per-rank payload bytes, comma list\n"
            "  --dcn-topology fat-tree | dragonfly\n"
            "  --kill-step N        kill a switch/trunk just before\n"
            "                       step N of every collective\n"
            "  --kill-trunk         kill a trunk instead of a switch\n"
            "  --kill-id 0          which switch/trunk dies\n"
            "  --fabric             also replay the schedules cycle-\n"
            "                       accurately on the waferscale\n"
            "                       internal fabric (crosscheck)\n"
            "  --fabric-payload 65536  per-rank bytes for the cycle-\n"
            "                       accurate replay (kept small; the\n"
            "                       fabric sim is ~1e5x slower)\n"
            "  --plan dp=8,tp=4,pp=2,ep=2\n"
            "                       also compose an LLM training\n"
            "                       iteration's collective mix and\n"
            "                       price it per design (each group\n"
            "                       priced on a dedicated network —\n"
            "                       an overlap-free upper bound)\n"
            "  --params 7e9 --layers 32 --hidden 4096 --tokens 4096\n"
            "  --microbatches 8 --moe-layers 0 --moe-capacity 1\n"
            "                       model geometry for --plan\n"
            "  --ws-ports 0         waferscale radix (0 = run the\n"
            "                       radix solver with the solve flags)\n"
            "  --conv-ports 64      conventional switch radix\n"
            "  --conv-ssc-radix 32  chiplet radix of the baseline\n"
            "  --profiles dir       profile cache directory, as in\n"
            "                       `wss dcn` [--calibrate refreshes]\n"
            "  --jobs N             worker threads\n"
            "  --seed 1             recorded in artifacts (the engine\n"
            "                       itself is deterministic)\n"
            "  --csv out.csv --json out.json --trace-out run.json\n"
            "  --stats-out t.csv    re-run the first cell with per-rank\n"
            "                       per-step telemetry on and dump the\n"
            "                       collective's Gantt data (long CSV)\n"
            "  --profile            print the phase self-time table\n"
            "  --manifest-out m.json  provenance manifest of this run\n"
            "  plus the solve flags (--substrate, --wsi, ...) and the\n"
            "  sim flags of `wss sim` (--vcs, --warmup, ...)\n";
        return 0;
    }

    // Strict by contract (same as WSS_JOBS): a malformed --seed or
    // --ranks silently coerced would poison every artifact, so
    // anything but a plain positive decimal integer is fatal.
    const std::uint64_t seed = static_cast<std::uint64_t>(
        args.has("seed")
            ? util::parsePositiveInt(args.str("seed", ""), "--seed")
            : 1);
    const int ranks = static_cast<int>(
        args.has("ranks")
            ? util::parsePositiveInt(args.str("ranks", ""), "--ranks",
                                     1 << 20)
            : 64);
    const int jobs = static_cast<int>(
        args.has("jobs")
            ? util::parsePositiveInt(args.str("jobs", ""), "--jobs",
                                     4096)
            : exec::ThreadPool::defaultThreads());

    exec::ThreadPool pool(jobs);
    ObsSession obs_session(args, "wss coll", seed, jobs);
    obs::Profiler profiler;
    ArtifactLog artifacts;
    obs::TraceEventSink trace;
    const bool tracing = args.has("trace-out");
    if (tracing)
        trace.setProcessName("wss coll");
    obs::TraceEventSink *sink = tracing ? &trace : nullptr;
    obs::MetricsRegistry metrics;

    // Waferscale design vs conventional baseline, exactly as in
    // `wss dcn` (shared profile cache format).
    core::DesignSpec dspec;
    dspec.substrate_side = args.num("substrate", 300.0);
    dspec.wsi = parseWsi(args.str("wsi", "siif2x"));
    dspec.external_io = parseExternalIo(args.str("ext", "optical"));
    dspec.ssc = power::tomahawk5(
        static_cast<int>(args.integer("ssc-config", 1)));
    const int deradix = static_cast<int>(args.integer("deradix", 1));
    if (deradix > 1)
        dspec.ssc = topology::deradixedSsc(dspec.ssc, deradix);
    dspec.cooling = parseCooling(args.str("cooling", "none"));
    dspec.topology = core::TopologyKind::Clos;
    dspec.mapping_restarts =
        static_cast<int>(args.integer("restarts", 2));
    dspec.seed = seed;

    std::int64_t ws_ports = args.integer("ws-ports", 0);
    double ws_power = 0.0;
    if (ws_ports <= 0) {
        const auto solved = core::RadixSolver(dspec).solveMaxPorts();
        if (solved.best.ports == 0)
            fatal("coll: the radix solver found no feasible "
                  "waferscale design; pin one with --ws-ports");
        ws_ports = alignPorts(solved.best.ports, dspec.ssc.radix);
        ws_power = solved.best.power.total();
        std::cout << "coll: solver sized the waferscale switch at "
                  << ws_ports << " ports, "
                  << Table::num(ws_power / 1000.0, 1) << " kW\n";
    } else {
        ws_ports = alignPorts(ws_ports, dspec.ssc.radix);
        ws_power = estimateSwitchPower(args, ws_ports, dspec.ssc);
    }

    const std::int64_t conv_ports = args.integer("conv-ports", 64);
    const power::SscConfig conv_ssc = power::scaledSsc(
        static_cast<int>(args.integer("conv-ssc-radix", 32)),
        dspec.ssc.line_rate);
    const std::int64_t conv_aligned =
        alignPorts(conv_ports, conv_ssc.radix);
    const double conv_power =
        estimateSwitchPower(args, conv_aligned, conv_ssc);

    const flow::SwitchProfile ws_profile = dcnProfile(
        args, "ws-" + std::to_string(ws_ports), ws_ports, dspec.ssc,
        ws_power, &pool, sink, &profiler);
    const flow::SwitchProfile conv_profile = dcnProfile(
        args, "conv-" + std::to_string(conv_aligned), conv_aligned,
        conv_ssc, conv_power, &pool, sink, &profiler);

    coll::CollCampaignConfig cfg;
    cfg.designs = {ws_profile, conv_profile};
    const std::string kind = args.str("dcn-topology", "fat-tree");
    if (kind == "fat-tree")
        cfg.kind = flow::DcnKind::FatTree;
    else if (kind == "dragonfly")
        cfg.kind = flow::DcnKind::Dragonfly;
    else
        fatal("coll: unknown --dcn-topology '", kind,
              "' (fat-tree | dragonfly)");
    cfg.ranks = ranks;
    cfg.collectives.clear();
    for (const auto &name :
         listFromArgs(args, "collectives", "ring,hd,tree,alltoall"))
        cfg.collectives.push_back(parseCollSpec(name));
    cfg.payload_bytes.clear();
    for (const auto &item : listFromArgs(args, "payloads", "1048576"))
        cfg.payload_bytes.push_back(std::stod(item));
    if (args.has("kill-step")) {
        cfg.fault.at_step =
            static_cast<int>(args.integer("kill-step", -1));
        cfg.fault.kill_switch = !args.has("kill-trunk");
        cfg.fault.id = static_cast<int>(args.integer("kill-id", 0));
    }
    cfg.seed = seed;

    const coll::CollResult result =
        coll::CollCampaign(cfg).run(&pool, sink, &profiler);

    Table table("wss coll — " + Table::num(cfg.ranks) +
                    " ranks, seed " + Table::num(cfg.seed),
                {"design", "collective", "payload", "hops", "steps",
                 "flow us", "flow busbw", "model us", "model busbw",
                 "flow/model", "failed"});
    for (const auto &cell : result.cells) {
        const double ratio = cell.model.seconds > 0.0
                                 ? cell.flow.seconds / cell.model.seconds
                                 : 0.0;
        table.addRow(
            {cell.design, cell.collective,
             Table::num(cell.payload_bytes, 0), Table::num(cell.hops),
             Table::num(cell.flow.steps),
             Table::num(cell.flow.seconds * 1e6, 1),
             Table::num(cell.flow.busbw_gbps, 1),
             Table::num(cell.model.seconds * 1e6, 1),
             Table::num(cell.model.busbw_gbps, 1),
             Table::num(ratio, 3),
             Table::num(cell.flow.failed_messages)});
    }
    table.print(std::cout);
    std::cout << "campaign: " << result.cells.size() << " cells on "
              << result.threads << " threads, wall "
              << Table::num(result.wall_seconds, 2) << " s\n";

    // Optional cycle-accurate crosscheck: replay each schedule on
    // the waferscale switch's own internal chiplet fabric.
    if (args.has("fabric")) {
        const double fab_payload = args.num("fabric-payload", 65536.0);
        const std::int64_t half = dspec.ssc.radix / 2;
        const std::int64_t fab_ports =
            std::max<std::int64_t>((ranks + half - 1) / half, 1) * half;
        const topology::LogicalTopology fab = topology::buildFoldedClos(
            {fab_ports, dspec.ssc,
             static_cast<int>(args.integer("leaf-split", 1))});
        const sim::NetworkSpec net_spec = fabricSpecFromArgs(args);
        Table fab_table(
            "wss coll — cycle-accurate on '" + fab.name() + "'",
            {"collective", "fabric us", "fabric busbw", "model us",
             "fabric/model"});
        for (const auto &spec : cfg.collectives) {
            const coll::Schedule schedule =
                coll::buildSchedule(spec, ranks);
            coll::CollExecConfig exec_cfg;
            exec_cfg.metrics = &metrics;
            exec_cfg.trace = sink;
            exec_cfg.trace_label = "fabric";
            const coll::CollExecResult fr = coll::executeOnFabric(
                schedule, fab_payload, fab, net_spec,
                ws_profile.cycle_seconds, 64.0, exec_cfg);
            const coll::CollExecResult mr = coll::executeAlphaBeta(
                schedule, fab_payload,
                coll::alphaBetaOf(ws_profile,
                                  ws_profile.line_rate_gbps, 1));
            fab_table.addRow(
                {schedule.name(), Table::num(fr.seconds * 1e6, 2),
                 Table::num(fr.busbw_gbps, 1),
                 Table::num(mr.seconds * 1e6, 2),
                 Table::num(mr.seconds > 0.0 ? fr.seconds / mr.seconds
                                             : 0.0,
                            3)});
        }
        fab_table.print(std::cout);
    }

    // Optional LLM parallelism plan: what one training iteration's
    // collective mix costs on each design.
    if (args.has("plan")) {
        const coll::PlanShape shape =
            parsePlanShape(args.str("plan", ""));
        coll::ModelSpec model;
        model.parameters = args.num("params", 7e9);
        model.layers = static_cast<int>(args.integer("layers", 32));
        model.hidden = static_cast<int>(args.integer("hidden", 4096));
        model.tokens_per_microbatch =
            static_cast<int>(args.integer("tokens", 4096));
        model.microbatches =
            static_cast<int>(args.integer("microbatches", 8));
        model.moe_layers =
            static_cast<int>(args.integer("moe-layers", 0));
        model.moe_capacity = args.num("moe-capacity", 1.0);
        const std::vector<coll::PlannedCollective> plan =
            coll::composeTrainingStep(shape, model);

        Table plan_table(
            "wss coll plan — dp=" + Table::num(shape.dp) + " tp=" +
                Table::num(shape.tp) + " pp=" + Table::num(shape.pp) +
                " ep=" + Table::num(shape.ep) + " (" +
                Table::num(shape.totalRanks()) + " ranks)",
            {"design", "collective", "group", "payload", "calls",
             "us/call", "total ms", "share"});
        std::vector<std::string> summaries;
        for (const auto &profile : cfg.designs) {
            double iter_s = 0.0;
            std::vector<double> entry_s;
            for (const auto &e : plan) {
                const coll::Schedule schedule = coll::buildSchedule(
                    {e.collective, e.algorithm}, e.group_ranks);
                flow::DcnTopology topo =
                    cfg.kind == flow::DcnKind::FatTree
                        ? flow::DcnTopology::buildFatTree(
                              e.group_ranks,
                              static_cast<int>(profile.radix),
                              profile.line_rate_gbps)
                        : flow::DcnTopology::buildDragonfly(
                              e.group_ranks,
                              static_cast<int>(profile.radix),
                              profile.line_rate_gbps);
                coll::CollExecConfig exec_cfg;
                exec_cfg.metrics = &metrics;
                const coll::CollExecResult r = coll::executeOnDcn(
                    schedule, e.payload_bytes, topo, profile, exec_cfg);
                entry_s.push_back(r.seconds);
                iter_s += r.seconds * static_cast<double>(e.invocations);
            }
            for (std::size_t i = 0; i < plan.size(); ++i) {
                const auto &e = plan[i];
                const double total =
                    entry_s[i] * static_cast<double>(e.invocations);
                plan_table.addRow(
                    {profile.name, e.label,
                     Table::num(e.group_ranks) + "x" +
                         Table::num(e.concurrent_groups),
                     Table::num(e.payload_bytes, 0),
                     Table::num(e.invocations),
                     Table::num(entry_s[i] * 1e6, 1),
                     Table::num(total * 1e3, 2),
                     Table::num(iter_s > 0.0 ? total / iter_s * 100.0
                                             : 0.0,
                                1) +
                         "%"});
            }
            // Network energy ceiling for the iteration: every switch
            // of a fabric covering all ranks burning its plate power
            // for the whole (overlap-free) collective time.
            flow::DcnTopology full =
                cfg.kind == flow::DcnKind::FatTree
                    ? flow::DcnTopology::buildFatTree(
                          shape.totalRanks(),
                          static_cast<int>(profile.radix),
                          profile.line_rate_gbps)
                    : flow::DcnTopology::buildDragonfly(
                          shape.totalRanks(),
                          static_cast<int>(profile.radix),
                          profile.line_rate_gbps);
            summaries.push_back(
                profile.name + ": comm " +
                Table::num(iter_s * 1e3, 2) + " ms/iter, " +
                Table::num(full.switchCount()) +
                " switches, network " +
                Table::num(full.switchCount() * profile.power_watts *
                               iter_s / 1e3,
                           2) +
                " kJ/iter");
        }
        plan_table.print(std::cout);
        for (const auto &line : summaries)
            std::cout << line << "\n";
    }

    if (args.has("csv")) {
        const std::string path = args.str("csv", "");
        result.writeCsvFile(path);
        artifacts.note(path, "coll-csv");
        std::cout << "CSV written to " << path << "\n";
    }
    if (args.has("json")) {
        const std::string path = args.str("json", "");
        result.writeJsonFile(path);
        artifacts.note(path, "coll-json");
        std::cout << "JSON written to " << path << "\n";
    }

    // Observed run: re-execute the campaign's first cell with
    // per-rank per-step telemetry on and dump the Gantt data.
    if (args.has("stats-out")) {
        const std::string path = args.str("stats-out", "");
        if (path.empty())
            fatal("coll: --stats-out needs a file path");
        const flow::SwitchProfile &profile = cfg.designs.front();
        const coll::Schedule schedule =
            coll::buildSchedule(cfg.collectives.front(), cfg.ranks);
        flow::DcnTopology topo =
            cfg.kind == flow::DcnKind::FatTree
                ? flow::DcnTopology::buildFatTree(
                      cfg.ranks, static_cast<int>(profile.radix),
                      profile.line_rate_gbps)
                : flow::DcnTopology::buildDragonfly(
                      cfg.ranks, static_cast<int>(profile.radix),
                      profile.line_rate_gbps);
        coll::CollExecConfig exec_cfg;
        exec_cfg.telemetry = true;
        exec_cfg.metrics = &metrics;
        exec_cfg.trace = sink;
        exec_cfg.trace_label = "coll-observed";
        exec_cfg.profiler = &profiler;
        exec_cfg.fault = cfg.fault;
        const coll::CollExecResult observed = coll::executeOnDcn(
            schedule, cfg.payload_bytes.front(), topo, profile,
            exec_cfg);
        observed.telemetry->dumpCsvFile(path);
        artifacts.note(path, "coll-telemetry");
        std::cout << "telemetry written to " << path << " ("
                  << schedule.name() << ", "
                  << observed.telemetry->steps.size() << " steps, "
                  << observed.messages << " messages)\n";
    }

    finishProfile(args, profiler, sink);
    if (tracing) {
        const std::string path = args.str("trace-out", "");
        if (path.empty())
            fatal("coll: --trace-out needs a file path");
        trace.writeFile(path);
        artifacts.note(path, "trace");
        std::cout << "trace written to " << path << " ("
                  << trace.size()
                  << " events; open in Perfetto / chrome://tracing)\n";
    }
    if (args.has("manifest-out"))
        writeManifest(args, "wss coll", seed, jobs, artifacts,
                      profiler);
    return 0;
}

int
cmdReport(const Args &args)
{
    if (args.has("help")) {
        std::cout <<
            "usage: wss report --manifest run.manifest.json [--flags]\n"
            "\n"
            "Render one run's provenance manifest and telemetry\n"
            "artifacts as a self-contained Markdown report (plus a\n"
            "machine-readable JSON twin): run identity, configuration,\n"
            "top self-time phases, hottest links over time, per-step\n"
            "collective breakdown, and a health-check table (artifact\n"
            "hashes, conservation, telemetry reconciliation).\n"
            "\n"
            "  --manifest m.json    manifest to report on (required\n"
            "                       unless --crash is given)\n"
            "  --crash crash.json   obs::CrashDump post-mortem to\n"
            "                       render (reason, event counters,\n"
            "                       per-thread phase stacks and last\n"
            "                       flight-recorder events)\n"
            "  --out report.md      Markdown output path\n"
            "  --json report.json   also write the JSON twin\n"
            "  --top-phases 12      rows in the self-time table\n"
            "  --top-links 10       rows in the hottest-links table\n"
            "  --crash-events 12    events shown per thread in the\n"
            "                       post-mortem section\n"
            "  --saturation 0.95    utilization flagged as saturated\n"
            "\n"
            "Exit status 1 when any health check fails.\n";
        return 0;
    }

    obs::ReportOptions opts;
    opts.manifest_path = args.str("manifest", "");
    opts.crash_path = args.str("crash", "");
    if (opts.manifest_path.empty() && opts.crash_path.empty())
        fatal("report: --manifest (or --crash) needs a JSON path");
    opts.top_phases =
        static_cast<std::size_t>(args.integer("top-phases", 12));
    opts.top_links =
        static_cast<std::size_t>(args.integer("top-links", 10));
    opts.crash_events =
        static_cast<std::size_t>(args.integer("crash-events", 12));
    opts.saturation_threshold = args.num("saturation", 0.95);

    const obs::RunReport report = obs::buildRunReport(opts);

    const std::string md_path = args.str("out", "report.md");
    report.writeMarkdownFile(md_path);
    std::cout << "report written to " << md_path << "\n";
    if (args.has("json")) {
        const std::string json_path = args.str("json", "");
        if (json_path.empty())
            fatal("report: --json needs a file path");
        report.writeJsonFile(json_path);
        std::cout << "JSON written to " << json_path << "\n";
    }

    std::size_t passed = 0;
    for (const auto &check : report.checks) {
        if (check.ok)
            ++passed;
        else
            std::cout << "FAILED " << check.name << ": "
                      << check.detail << "\n";
    }
    std::cout << "health: " << passed << "/" << report.checks.size()
              << " checks passed\n";
    return report.ok() ? 0 : 1;
}

int
cmdPlan(const Args &args)
{
    const core::DesignSpec spec = specFromArgs(args);
    const auto result = core::RadixSolver(spec).solveMaxPorts();
    const auto &best = result.best;
    if (best.ports == 0)
        fatal("no feasible design for this spec");

    const auto delivery = sysarch::sizePowerDelivery(
        best.power.total(), spec.substrate_side);
    const int grid = static_cast<int>(std::ceil(
                         std::sqrt(best.ssc_chiplets))) + 2;
    const auto cooling =
        sysarch::sizeCoolingLoop(best.power.total(), grid);
    const auto enclosure =
        sysarch::planEnclosure(best.ports, spec.ssc.line_rate);

    Table table("wss plan — full system", {"component", "value"});
    table.addRow({"switch radix", Table::num(best.ports)});
    table.addRow({"power (kW)",
                  Table::num(best.power.total() / 1000.0, 1)});
    table.addRow({"PSUs (N+N)", Table::num(delivery.psus)});
    table.addRow({"DC-DC bricks", Table::num(delivery.dcdc_converters)});
    table.addRow({"VRMs", Table::num(delivery.vrms)});
    table.addRow({"fits under wafer",
                  delivery.fits_under_wafer ? "yes" : "no"});
    table.addRow({"PCLs / channels",
                  Table::num(cooling.pcls) + " / " +
                      Table::num(cooling.supply_channels)});
    table.addRow({"junction (C)",
                  Table::num(cooling.junction_temperature, 0)});
    table.addRow({"front-panel adapters",
                  Table::num(enclosure.adapters)});
    table.addRow({"chassis (RU)", Table::num(enclosure.rack_units)});
    table.print(std::cout);
    return 0;
}

void
usage()
{
    std::cout <<
        "usage: wss <subcommand> [--flags]\n"
        "\n"
        "  solve   --substrate 300 --wsi siif2x --ext optical\n"
        "          --topology clos --cooling water --hetero 4\n"
        "          --deradix 1 --ssc-config 1 [--ideal]\n"
        "  sim     --ports 512 --pattern uniform --packet-flits 1\n"
        "          --vcs 16 --buffer 64 [--adaptive]\n"
        "          [--stats-out stats.csv --rate 0.7 --obs-sample 100]\n"
        "  sweep   --jobs 8 --patterns uniform,tornado,shuffle\n"
        "          --points 9 --max-rate 0.9 [--geometric\n"
        "          --min-rate 0.05] --reps 1 (sim flags)\n"
        "          [--csv out.csv --json out.json --trace-out run.json]\n"
        "  trace   --app lulesh --ranks 512 --duplicate 4 --out t.trc\n"
        "  yield   --chiplets 96 --die-area 800 --defects 0.1\n"
        "  resilience  --ports 256,512 --densities 0.1,0.3\n"
        "          --spares 0,1,2 --samples 500 [--sim-samples 4]\n"
        "          --jobs 8 [--csv out.csv --json out.json\n"
        "          --trace-out run.json]\n"
        "          (run `wss resilience --help` for all flags)\n"
        "  dcn     --hosts 1024 --flows 100000 --loads 0.3,0.7\n"
        "          --workloads websearch,hadoop --dcn-topology\n"
        "          fat-tree --jobs 8 [--calibrate --profiles dir]\n"
        "          [--csv out.csv --json out.json]\n"
        "          (run `wss dcn --help` for all flags)\n"
        "  coll    --ranks 64 --collectives ring,hd,tree,alltoall\n"
        "          --payloads 1048576 [--fabric]\n"
        "          [--plan dp=8,tp=4,pp=2,ep=2] --jobs 8\n"
        "          [--csv out.csv --json out.json]\n"
        "          (run `wss coll --help` for all flags)\n"
        "  report  --manifest run.manifest.json --out report.md\n"
        "          [--json report.json --crash crash.json]\n"
        "          (run `wss report --help` for all flags)\n"
        "  plan    (solve flags) -> power delivery/cooling/enclosure\n"
        "\n"
        "Most subcommands also take --profile (phase self-time table)\n"
        "and --manifest-out m.json (provenance manifest, the input to\n"
        "`wss report`). Campaign-shaped subcommands (sim, sweep,\n"
        "resilience, dcn, coll) additionally take the observability\n"
        "flags --flight-recorder [N], --crash-dump crash.json,\n"
        "--watchdog SECONDS and --progress.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "solve")
        return cmdSolve(args);
    if (cmd == "sim")
        return cmdSim(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "trace")
        return cmdTrace(args);
    if (cmd == "yield")
        return cmdYield(args);
    if (cmd == "resilience")
        return cmdResilience(args);
    if (cmd == "dcn")
        return cmdDcn(args);
    if (cmd == "coll")
        return cmdColl(args);
    if (cmd == "report")
        return cmdReport(args);
    if (cmd == "plan")
        return cmdPlan(args);
    usage();
    return cmd == "help" || cmd == "--help" ? 0 : 1;
}
