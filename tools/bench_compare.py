#!/usr/bin/env python3
"""Compare two bench_simcore JSON reports.

Usage: tools/bench_compare.py BASELINE.json CANDIDATE.json
           [--max-regress PCT] [--require-identical]

Points are matched by (name, rate). For each match the tool prints
the throughput ratio, and fails (exit 1) when:

  * the candidate is more than --max-regress percent slower than the
    baseline on any point (default 10; timing noise on shared boxes
    easily reaches a few percent, so the default is deliberately
    loose — tighten it on quiet machines), or
  * --require-identical is given and flits_delivered / end_cycle /
    stable differ on any point. Those fields are wall-clock
    independent: any difference means the simulator's *behaviour*
    changed, not just its speed, and the perf comparison is void.

Only the standard library is used, so the script runs anywhere the
repo builds.
"""

import argparse
import json
import sys


def load_points(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"bench_compare: cannot read {path}: {err.strerror}"
                 " (generate it with `bench_simcore --json`)")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_compare: {path} is not valid JSON ({err})")
    if doc.get("bench") != "simcore":
        sys.exit(f"bench_compare: {path} is not a bench_simcore "
                 f"report (bench={doc.get('bench')!r})")
    try:
        return doc.get("smoke", False), {
            (p["name"], p["rate"]): p for p in doc["points"]
        }
    except (KeyError, TypeError) as err:
        sys.exit(f"bench_compare: {path} is missing expected "
                 f"bench_simcore fields ({err})")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench_simcore JSON reports.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--max-regress", type=float, default=10.0, metavar="PCT",
        help="fail if any point is more than PCT%% slower "
             "(default: %(default)s)")
    parser.add_argument(
        "--require-identical", action="store_true",
        help="fail unless flits_delivered/end_cycle/stable match "
             "point-for-point (behavioural bit-identity)")
    args = parser.parse_args()

    base_smoke, base = load_points(args.baseline)
    cand_smoke, cand = load_points(args.candidate)
    if base_smoke != cand_smoke:
        sys.exit("refusing to compare a --smoke run against a full "
                 "run: the workloads differ")

    common = sorted(base.keys() & cand.keys())
    if not common:
        sys.exit("bench_compare: no common points between "
                 f"{args.baseline} and {args.candidate} — were they "
                 "produced by different benchmarks?")
    for key in sorted(base.keys() ^ cand.keys()):
        side = "baseline" if key in base else "candidate"
        print(f"note: {key[0]} @ {key[1]} only in {side}, skipped")

    failures = []
    print(f"{'point':28s} {'base':>9s} {'cand':>9s} {'ratio':>7s}  "
          f"identical")
    for key in common:
        b, c = base[key], cand[key]
        ratio = (c["mflits_per_second"] / b["mflits_per_second"]
                 if b["mflits_per_second"] > 0 else float("inf"))
        identical = all(
            b[f] == c[f]
            for f in ("flits_delivered", "end_cycle", "stable"))
        label = f"{key[0]}/{key[1]:.2f}"
        print(f"{label:28s} {b['mflits_per_second']:9.3f} "
              f"{c['mflits_per_second']:9.3f} {ratio:6.2f}x  "
              f"{'yes' if identical else 'NO'}")
        if ratio < 1.0 - args.max_regress / 100.0:
            failures.append(
                f"{label}: {((1.0 - ratio) * 100.0):.1f}% slower "
                f"(limit {args.max_regress}%)")
        if args.require_identical and not identical:
            failures.append(
                f"{label}: behavioural mismatch "
                f"(flits {b['flits_delivered']} vs "
                f"{c['flits_delivered']}, end_cycle "
                f"{b['end_cycle']} vs {c['end_cycle']}, stable "
                f"{b['stable']} vs {c['stable']})")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("\nbench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
