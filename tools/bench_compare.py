#!/usr/bin/env python3
"""Compare two bench JSON reports (bench_simcore or bench_coll).

Usage: tools/bench_compare.py BASELINE.json CANDIDATE.json
           [--max-regress PCT] [--require-identical]

Both files must come from the same benchmark; the kind is read from
the "bench" field. Points are matched by (name, rate). For each match
the tool prints the metric ratio, and fails (exit 1) when:

  * the candidate is more than --max-regress percent below the
    baseline on any point (default 10; timing noise on shared boxes
    easily reaches a few percent, so the default is deliberately
    loose — tighten it on quiet machines), or
  * --require-identical is given and the kind's identity fields
    differ on any point. Those fields are wall-clock independent:
    any difference means the engine's *behaviour* changed, not just
    its speed, and the perf comparison is void.

Kinds:
  simcore  metric mflits_per_second (wall-clock throughput);
           identity flits_delivered / end_cycle / stable
  coll     metric busbw_gbps (simulated bus bandwidth — fully
           deterministic, so use --require-identical and treat ANY
           drift as behavioural); identity steps / messages /
           flow_us / model_us / failed

When a provenance manifest sits next to a report (the benches write
`REPORT.json.manifest.json` siblings), its resolved configuration is
compared too: two reports whose configs differ were not measuring the
same thing, and the comparison fails before any ratio is printed.
Reports without manifests (older baselines) skip the check with a
note.

Only the standard library is used, so the script runs anywhere the
repo builds.
"""

import argparse
import json
import os
import sys

# Per-benchmark comparison contract: which field is the higher-is-
# better metric, and which fields must be bit-identical for the run
# to count as behaviourally unchanged.
BENCH_KINDS = {
    "simcore": {
        "metric": "mflits_per_second",
        "identity": ("flits_delivered", "end_cycle", "stable"),
    },
    "coll": {
        "metric": "busbw_gbps",
        "identity": ("steps", "messages", "flow_us", "model_us",
                     "failed"),
    },
}


def load_points(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"bench_compare: cannot read {path}: {err.strerror}"
                 " (generate it with `bench_simcore --json` or "
                 "`bench_coll --json`)")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_compare: {path} is not valid JSON ({err})")
    kind = doc.get("bench")
    if kind not in BENCH_KINDS:
        sys.exit(f"bench_compare: {path} is not a known bench report "
                 f"(bench={kind!r}, expected one of "
                 f"{sorted(BENCH_KINDS)})")
    try:
        return kind, doc.get("smoke", False), {
            (p["name"], p["rate"]): p for p in doc["points"]
        }
    except (KeyError, TypeError) as err:
        sys.exit(f"bench_compare: {path} is missing expected "
                 f"bench_{kind} fields ({err})")


def load_manifest(report_path):
    """Load the report's provenance sibling, or None when absent."""
    path = report_path + ".manifest.json"
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: {path} is unreadable ({err})")
    if "wss_run_manifest" not in doc:
        sys.exit(f"bench_compare: {path} is not a wss run manifest")
    return doc


def check_manifests(baseline, candidate):
    """Fail when both sides carry manifests whose configs differ.

    Phase timings and artifact hashes legitimately differ run to run;
    the resolved configuration must not — a config mismatch means the
    two reports measured different workloads and every ratio below
    would be noise.
    """
    base = load_manifest(baseline)
    cand = load_manifest(candidate)
    if base is None or cand is None:
        for path, doc in ((baseline, base), (candidate, cand)):
            if doc is None:
                print(f"note: no manifest next to {path}, "
                      "provenance unchecked")
        return
    print(f"manifest identity: baseline {base.get('identity_hash')} "
          f"candidate {cand.get('identity_hash')}")
    base_cfg = base.get("config", {})
    cand_cfg = cand.get("config", {})
    mismatches = [
        f"  {key}: {base_cfg.get(key, '<absent>')!r} vs "
        f"{cand_cfg.get(key, '<absent>')!r}"
        for key in sorted(base_cfg.keys() | cand_cfg.keys())
        if base_cfg.get(key) != cand_cfg.get(key)
    ]
    if mismatches:
        sys.exit("bench_compare: manifest configs differ — the "
                 "reports measured different workloads:\n" +
                 "\n".join(mismatches))
    print("manifest configs match")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench JSON reports.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--max-regress", type=float, default=10.0, metavar="PCT",
        help="fail if any point is more than PCT%% below the "
             "baseline (default: %(default)s)")
    parser.add_argument(
        "--require-identical", action="store_true",
        help="fail unless the identity fields match point-for-point "
             "(behavioural bit-identity)")
    args = parser.parse_args()

    check_manifests(args.baseline, args.candidate)
    base_kind, base_smoke, base = load_points(args.baseline)
    cand_kind, cand_smoke, cand = load_points(args.candidate)
    if base_kind != cand_kind:
        sys.exit(f"refusing to compare bench={base_kind!r} against "
                 f"bench={cand_kind!r}")
    if base_smoke != cand_smoke:
        sys.exit("refusing to compare a --smoke run against a full "
                 "run: the workloads differ")
    metric = BENCH_KINDS[base_kind]["metric"]
    identity = BENCH_KINDS[base_kind]["identity"]

    common = sorted(base.keys() & cand.keys())
    if not common:
        sys.exit("bench_compare: no common points between "
                 f"{args.baseline} and {args.candidate} — were they "
                 "produced by different benchmarks?")
    for key in sorted(base.keys() ^ cand.keys()):
        side = "baseline" if key in base else "candidate"
        print(f"note: {key[0]} @ {key[1]} only in {side}, skipped")

    failures = []
    print(f"{'point':44s} {'base':>9s} {'cand':>9s} {'ratio':>7s}  "
          f"identical")
    for key in common:
        b, c = base[key], cand[key]
        ratio = (c[metric] / b[metric]
                 if b[metric] > 0 else float("inf"))
        identical = all(b[f] == c[f] for f in identity)
        label = f"{key[0]}/{key[1]:.2f}"
        print(f"{label:44s} {b[metric]:9.3f} {c[metric]:9.3f} "
              f"{ratio:6.2f}x  {'yes' if identical else 'NO'}")
        if ratio < 1.0 - args.max_regress / 100.0:
            failures.append(
                f"{label}: {((1.0 - ratio) * 100.0):.1f}% below "
                f"baseline (limit {args.max_regress}%)")
        if args.require_identical and not identical:
            mismatches = ", ".join(
                f"{f} {b[f]} vs {c[f]}"
                for f in identity if b[f] != c[f])
            failures.append(
                f"{label}: behavioural mismatch ({mismatches})")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("\nbench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
