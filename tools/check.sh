#!/usr/bin/env bash
#
# Full pre-merge verification:
#   1. tier-1 build + ctest (the ROADMAP gate),
#   2. a ThreadSanitizer build of the parallel execution engine, the
#      fault/resilience campaigns, and the observability layer that
#      rides on both (test_exec + test_sim + test_fault + test_obs via
#      the `tsan` CMake preset), so every change to the thread pool /
#      sweep runner / resilience fan-out / metrics merge is
#      race-checked, and
#   3. an observability smoke: a parallel sweep with --trace-out whose
#      JSON must parse, and a sim run with --stats-out whose counters
#      must reconcile (the CLI panics if they do not).
#
# Usage: tools/check.sh            (from anywhere in the repo)
#        JOBS=8 tools/check.sh     (override the parallelism)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tsan: configure + build (test_exec, test_sim, test_fault, test_obs) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: race-checked test run =="
# Death tests (fork under TSAN) are excluded by the preset filter.
ctest --preset tsan

echo "== obs smoke: parallel trace + stats reconciliation =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/wss sweep --ports 128 --patterns uniform --measure 1000 \
    --points 3 --jobs 4 --trace-out "$OBS_TMP/sweep_trace.json"
python3 -m json.tool "$OBS_TMP/sweep_trace.json" > /dev/null
echo "trace JSON parses"
build/tools/wss sim --ports 128 --measure 1000 --points 3 --rate 0.4 \
    --stats-out "$OBS_TMP/sim_stats.csv" --obs-sample 200
test -s "$OBS_TMP/sim_stats.csv"

echo "check.sh: all green"
