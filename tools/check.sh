#!/usr/bin/env bash
#
# Full pre-merge verification:
#   1. tier-1 build + ctest (the ROADMAP gate), and
#   2. a ThreadSanitizer build of the parallel execution engine and
#      the fault/resilience campaigns that ride on it (test_exec +
#      test_sim + test_fault via the `tsan` CMake preset), so every
#      change to the thread pool / sweep runner / resilience fan-out
#      is race-checked.
#
# Usage: tools/check.sh            (from anywhere in the repo)
#        JOBS=8 tools/check.sh     (override the parallelism)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tsan: configure + build (test_exec, test_sim, test_fault) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: race-checked test run =="
# Death tests (fork under TSAN) are excluded by the preset filter.
ctest --preset tsan

echo "check.sh: all green"
