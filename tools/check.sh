#!/usr/bin/env bash
#
# Full pre-merge verification:
#   1. tier-1 build + ctest (the ROADMAP gate),
#   2. a ThreadSanitizer build of the parallel execution engine, the
#      fault/resilience campaigns, and the observability layer that
#      rides on both (test_exec + test_sim + test_fault + test_obs via
#      the `tsan` CMake preset), so every change to the thread pool /
#      sweep runner / resilience fan-out / metrics merge is
#      race-checked, and
#   3. an AddressSanitizer build of the simulator core running the
#      bit-exact determinism suite (the `asan` preset), so flit-pool
#      lifetime or ring-buffer indexing bugs introduced by hot-path
#      work die loudly instead of corrupting results, plus an
#      end-to-end `wss coll --manifest-out` → `wss report` pipeline
#      under ASan (the reporter parses untrusted CSV/JSON, so its
#      string handling runs heap-checked),
#   4. a release-preset bench_simcore --smoke, proving the optimized
#      build still runs every bench point to a stable result (the
#      perf numbers themselves are tracked in bench_results/), and a
#      profiler-overhead guard: a disabled ScopedPhase must be far
#      cheaper than an enabled one (the ≤1% hot-loop contract),
#   5. an observability smoke: a parallel sweep with --trace-out whose
#      JSON must parse, and a sim run with --stats-out whose counters
#      must reconcile (the CLI panics if they do not), and
#   6. a DCN smoke: `wss dcn` calibrates a tiny fat-tree pair and runs
#      1k flows; its JSON artifact, windowed telemetry and provenance
#      manifest must parse, and
#   7. a collectives smoke: `wss coll` runs the allreduce/all-to-all
#      comparison (flow vs alpha-beta, plus the cycle-accurate fabric
#      crosscheck and a parallelism plan); its JSON and manifest must
#      parse, `wss report` must pass every health check on the run,
#      and bench_coll --smoke is gated against a fresh re-run with
#      tools/bench_compare.py --require-identical (the engine is
#      deterministic, so any drift is a behavioural change; the bench
#      manifests prove both runs shared one configuration),
#   8. the flight-recorder stack: the disabled-recordEvent overhead
#      guard (same >=10x contract as the profiler), a watchdog stall
#      smoke (a deliberately sleeping worker must be diagnosed and
#      aborted within a sub-second timeout), and a crash post-mortem
#      smoke (a panic()ing helper leaves a crash.json that python3 -m
#      json.tool accepts and `wss report --crash` renders), and
#   9. a bench_results/ hygiene guard: only result files (BENCH_*.json,
#      their manifests, and bench_*.txt logs) may live there — stray
#      build droppings fail the check.
#
# Usage: tools/check.sh            (from anywhere in the repo)
#        JOBS=8 tools/check.sh     (override the parallelism)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== bench_results hygiene =="
# Only benchmark results belong in bench_results/: BENCH_*.json, the
# provenance manifests they write, and bench_*.txt logs. Anything
# else (stale CMake droppings, editor backups) fails the check.
STRAY="$(find bench_results -type f \
    ! -name 'BENCH_*.json' \
    ! -name '*.manifest.json' \
    ! -name 'bench_*.txt' \
    ! -name 'README*' 2>/dev/null || true)"
if [ -n "$STRAY" ]; then
    echo "FAIL: non-result files under bench_results/:" >&2
    echo "$STRAY" >&2
    exit 1
fi
echo "bench_results clean"

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tsan: configure + build (test_exec, test_sim, test_fault, test_obs, test_flow, test_coll) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: race-checked test run =="
# Death tests (fork under TSAN) are excluded by the preset filter.
ctest --preset tsan

echo "== asan: configure + build (test_sim_determinism, test_flow, test_coll) =="
cmake --preset asan
cmake --build --preset asan -j "$JOBS"

echo "== asan: heap-checked determinism suite =="
# The ZeroAllocation test is excluded by the preset filter: ASan
# interposes the allocator, which defeats the counting hook.
ctest --preset asan

echo "== asan: wss report end to end =="
ASAN_TMP="$(mktemp -d)"
build-asan/tools/wss coll --ws-ports 256 --conv-ports 64 \
    --cal-ports 64 --points 2 --ranks 8 --payloads 65536 \
    --warmup 200 --measure 500 --drain 3000 --jobs 2 \
    --csv "$ASAN_TMP/coll.csv" --stats-out "$ASAN_TMP/coll_steps.csv" \
    --manifest-out "$ASAN_TMP/coll.manifest.json"
build-asan/tools/wss report --manifest "$ASAN_TMP/coll.manifest.json" \
    --out "$ASAN_TMP/report.md" --json "$ASAN_TMP/report.json"
python3 -m json.tool "$ASAN_TMP/report.json" > /dev/null
rm -rf "$ASAN_TMP"
echo "asan report pipeline green"

echo "== release: bench_simcore smoke =="
cmake --preset release
cmake --build --preset release -j "$JOBS"
BENCH_TMP="$(mktemp -d)"
build-release/bench/bench_simcore --smoke \
    --json "$BENCH_TMP/BENCH_simcore_smoke.json"
python3 -m json.tool "$BENCH_TMP/BENCH_simcore_smoke.json" > /dev/null
python3 -m json.tool \
    "$BENCH_TMP/BENCH_simcore_smoke.json.manifest.json" > /dev/null
rm -rf "$BENCH_TMP"
echo "bench smoke JSON + manifest parse"

echo "== release: profiler-overhead guard =="
# The null-handle contract: a ScopedPhase on a null profiler must be
# at least 10x cheaper than on a live one (in practice ~200x — one
# predicted branch vs a map walk), or hot loops can no longer stay
# instrumented unconditionally.
GUARD_TMP="$(mktemp -d)"
build-release/bench/bench_micro \
    --benchmark_filter='BM_ProfilerScope' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json > "$GUARD_TMP/profiler.json"
python3 - "$GUARD_TMP/profiler.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
times = {b["name"]: b["real_time"] for b in doc["benchmarks"]}
disabled = times["BM_ProfilerScopeDisabled"]
enabled = times["BM_ProfilerScopeEnabled"]
print(f"profiler scope: disabled {disabled:.2f} ns, "
      f"enabled {enabled:.2f} ns")
if disabled * 10.0 > enabled:
    sys.exit("FAIL: disabled ScopedPhase is not >=10x cheaper than "
             "enabled — the null-handle no-op contract regressed")
EOF
echo "== release: flight-recorder overhead guard =="
# Same null-handle contract as the profiler: recordEvent with no ring
# attached to the thread must be at least 10x cheaper than with the
# recorder enabled (in practice ~80x — one predicted branch vs a
# timestamp + ring write), so campaign/simulator call sites can stay
# instrumented unconditionally.
build-release/bench/bench_micro \
    --benchmark_filter='BM_FlightRecorder' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json > "$GUARD_TMP/recorder.json"
python3 - "$GUARD_TMP/recorder.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
times = {b["name"]: b["real_time"] for b in doc["benchmarks"]}
disabled = times["BM_FlightRecorderDisabled"]
enabled = times["BM_FlightRecorderEnabled"]
print(f"flight recorder: disabled {disabled:.2f} ns, "
      f"enabled {enabled:.2f} ns")
if disabled * 10.0 > enabled:
    sys.exit("FAIL: disabled recordEvent is not >=10x cheaper than "
             "enabled — the null-handle no-op contract regressed")
EOF
rm -rf "$GUARD_TMP"
echo "profiler + flight-recorder overhead guards green"

echo "== obs smoke: parallel trace + stats reconciliation =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/wss sweep --ports 128 --patterns uniform --measure 1000 \
    --points 3 --jobs 4 --trace-out "$OBS_TMP/sweep_trace.json" \
    --manifest-out "$OBS_TMP/sweep.manifest.json"
python3 -m json.tool "$OBS_TMP/sweep_trace.json" > /dev/null
python3 -m json.tool "$OBS_TMP/sweep.manifest.json" > /dev/null
echo "trace JSON + manifest parse"
build/tools/wss sim --ports 128 --measure 1000 --points 3 --rate 0.4 \
    --stats-out "$OBS_TMP/sim_stats.csv" --obs-sample 200
test -s "$OBS_TMP/sim_stats.csv"

echo "== dcn smoke: tiny fat-tree, 1k flows =="
build/tools/wss dcn --ws-ports 256 --conv-ports 64 --hosts 64 \
    --flows 1000 --workloads websearch --loads 0.5 --cal-ports 64 \
    --points 3 --warmup 200 --measure 500 --drain 3000 --jobs 2 \
    --profiles "$OBS_TMP/profiles" --json "$OBS_TMP/dcn.json" \
    --stats-out "$OBS_TMP/dcn_windows.csv" \
    --manifest-out "$OBS_TMP/dcn.manifest.json"
python3 -m json.tool "$OBS_TMP/dcn.json" > /dev/null
python3 -m json.tool "$OBS_TMP/dcn.manifest.json" > /dev/null
test -s "$OBS_TMP/dcn_windows.csv"
echo "dcn JSON + manifest parse"

echo "== coll smoke: schedules at three fidelities =="
build/tools/wss coll --ws-ports 256 --conv-ports 64 --cal-ports 64 \
    --points 2 --ranks 8 --payloads 65536,1048576 --fabric \
    --fabric-payload 16384 --plan dp=4,tp=2 --layers 4 \
    --microbatches 2 --warmup 200 --measure 500 --drain 3000 \
    --jobs 2 --profiles "$OBS_TMP/profiles" \
    --json "$OBS_TMP/coll.json" \
    --stats-out "$OBS_TMP/coll_steps.csv" \
    --manifest-out "$OBS_TMP/coll.manifest.json"
python3 -m json.tool "$OBS_TMP/coll.json" > /dev/null
python3 -m json.tool "$OBS_TMP/coll.manifest.json" > /dev/null
echo "coll JSON + manifest parse"

echo "== report: health checks on the coll run =="
build/tools/wss report --manifest "$OBS_TMP/coll.manifest.json" \
    --out "$OBS_TMP/coll_report.md" --json "$OBS_TMP/coll_report.json"
python3 -m json.tool "$OBS_TMP/coll_report.json" > /dev/null
test -s "$OBS_TMP/coll_report.md"
echo "report Markdown + JSON green"

echo "== coll bench: deterministic against itself =="
build-release/bench/bench_coll --smoke \
    --json "$OBS_TMP/BENCH_coll_a.json"
build-release/bench/bench_coll --smoke \
    --json "$OBS_TMP/BENCH_coll_b.json"
python3 tools/bench_compare.py "$OBS_TMP/BENCH_coll_a.json" \
    "$OBS_TMP/BENCH_coll_b.json" --require-identical

echo "== watchdog smoke: stalled worker diagnosed in under a second =="
# The helper forks a worker that registers a heartbeat and then
# sleeps; the watchdog must dump its diagnosis and abort within the
# 0.2 s timeout. The helper exits 0 only when the death matched.
build/tests/obs_crash_helper --mode stall --watchdog-timeout 0.2
echo "watchdog stall smoke green"

echo "== crash smoke: panic -> crash.json -> wss report --crash =="
build/tests/obs_crash_helper --mode panic \
    --crash-dump "$OBS_TMP/crash.json" 2> /dev/null
python3 -m json.tool "$OBS_TMP/crash.json" > /dev/null
build/tools/wss report --crash "$OBS_TMP/crash.json" \
    --out "$OBS_TMP/crash_report.md" \
    --json "$OBS_TMP/crash_report.json" \
    | grep -q "checks passed"
python3 -m json.tool "$OBS_TMP/crash_report.json" > /dev/null
grep -q "## Post-mortem" "$OBS_TMP/crash_report.md"
echo "crash post-mortem pipeline green"

echo "== progress smoke: campaign with the live status line =="
# --progress and --watchdog ride the same heartbeat registry as the
# stall detector; a healthy run must finish cleanly with both armed.
build/tools/wss sweep --ports 128 --patterns uniform --measure 1000 \
    --points 3 --jobs 2 --progress --watchdog 30 --flight-recorder \
    --crash-dump "$OBS_TMP/sweep_crash.json" > /dev/null
# A clean run must leave no crash dump behind.
test ! -s "$OBS_TMP/sweep_crash.json"
echo "progress + watchdog smoke green"

echo "check.sh: all green"
