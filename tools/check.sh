#!/usr/bin/env bash
#
# Full pre-merge verification:
#   1. tier-1 build + ctest (the ROADMAP gate),
#   2. a ThreadSanitizer build of the parallel execution engine, the
#      fault/resilience campaigns, and the observability layer that
#      rides on both (test_exec + test_sim + test_fault + test_obs via
#      the `tsan` CMake preset), so every change to the thread pool /
#      sweep runner / resilience fan-out / metrics merge is
#      race-checked, and
#   3. an AddressSanitizer build of the simulator core running the
#      bit-exact determinism suite (the `asan` preset), so flit-pool
#      lifetime or ring-buffer indexing bugs introduced by hot-path
#      work die loudly instead of corrupting results,
#   4. a release-preset bench_simcore --smoke, proving the optimized
#      build still runs every bench point to a stable result (the
#      perf numbers themselves are tracked in bench_results/), and
#   5. an observability smoke: a parallel sweep with --trace-out whose
#      JSON must parse, and a sim run with --stats-out whose counters
#      must reconcile (the CLI panics if they do not), and
#   6. a DCN smoke: `wss dcn` calibrates a tiny fat-tree pair and runs
#      1k flows; its JSON artifact must parse, and
#   7. a collectives smoke: `wss coll` runs the allreduce/all-to-all
#      comparison (flow vs alpha-beta, plus the cycle-accurate fabric
#      crosscheck and a parallelism plan); its JSON must parse, and
#      bench_coll --smoke is gated against a fresh re-run with
#      tools/bench_compare.py --require-identical (the engine is
#      deterministic, so any drift is a behavioural change).
#
# Usage: tools/check.sh            (from anywhere in the repo)
#        JOBS=8 tools/check.sh     (override the parallelism)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tsan: configure + build (test_exec, test_sim, test_fault, test_obs, test_flow, test_coll) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: race-checked test run =="
# Death tests (fork under TSAN) are excluded by the preset filter.
ctest --preset tsan

echo "== asan: configure + build (test_sim_determinism, test_flow, test_coll) =="
cmake --preset asan
cmake --build --preset asan -j "$JOBS"

echo "== asan: heap-checked determinism suite =="
# The ZeroAllocation test is excluded by the preset filter: ASan
# interposes the allocator, which defeats the counting hook.
ctest --preset asan

echo "== release: bench_simcore smoke =="
cmake --preset release
cmake --build --preset release -j "$JOBS"
BENCH_TMP="$(mktemp -d)"
build-release/bench/bench_simcore --smoke \
    --json "$BENCH_TMP/BENCH_simcore_smoke.json"
python3 -m json.tool "$BENCH_TMP/BENCH_simcore_smoke.json" > /dev/null
rm -rf "$BENCH_TMP"
echo "bench smoke JSON parses"

echo "== obs smoke: parallel trace + stats reconciliation =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/wss sweep --ports 128 --patterns uniform --measure 1000 \
    --points 3 --jobs 4 --trace-out "$OBS_TMP/sweep_trace.json"
python3 -m json.tool "$OBS_TMP/sweep_trace.json" > /dev/null
echo "trace JSON parses"
build/tools/wss sim --ports 128 --measure 1000 --points 3 --rate 0.4 \
    --stats-out "$OBS_TMP/sim_stats.csv" --obs-sample 200
test -s "$OBS_TMP/sim_stats.csv"

echo "== dcn smoke: tiny fat-tree, 1k flows =="
build/tools/wss dcn --ws-ports 256 --conv-ports 64 --hosts 64 \
    --flows 1000 --workloads websearch --loads 0.5 --cal-ports 64 \
    --points 3 --warmup 200 --measure 500 --drain 3000 --jobs 2 \
    --profiles "$OBS_TMP/profiles" --json "$OBS_TMP/dcn.json"
python3 -m json.tool "$OBS_TMP/dcn.json" > /dev/null
echo "dcn JSON parses"

echo "== coll smoke: schedules at three fidelities =="
build/tools/wss coll --ws-ports 256 --conv-ports 64 --cal-ports 64 \
    --points 2 --ranks 8 --payloads 65536,1048576 --fabric \
    --fabric-payload 16384 --plan dp=4,tp=2 --layers 4 \
    --microbatches 2 --warmup 200 --measure 500 --drain 3000 \
    --jobs 2 --profiles "$OBS_TMP/profiles" --json "$OBS_TMP/coll.json"
python3 -m json.tool "$OBS_TMP/coll.json" > /dev/null
echo "coll JSON parses"

echo "== coll bench: deterministic against itself =="
build-release/bench/bench_coll --smoke \
    --json "$OBS_TMP/BENCH_coll_a.json"
build-release/bench/bench_coll --smoke \
    --json "$OBS_TMP/BENCH_coll_b.json"
python3 tools/bench_compare.py "$OBS_TMP/BENCH_coll_a.json" \
    "$OBS_TMP/BENCH_coll_b.json" --require-identical

echo "check.sh: all green"
